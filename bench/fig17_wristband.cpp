// Fig. 17 — demo within a wristband: recognition while sitting, standing,
// and walking (body motion moves the whole hand relative to the board).
//
// Paper: 6 volunteers × 3 conditions × 25 repetitions; averaged accuracy
// 97.17% (recall 97.17%, precision 97.46%) — walking costs a little, the
// wristband deployment remains practical.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig17_wristband",
      "Fig. 17: wristband conditions (sitting / standing / walking)");
  if (!args) return 0;

  const synth::Activity conditions[] = {synth::Activity::kSitting,
                                        synth::Activity::kStanding,
                                        synth::Activity::kWalking};

  common::Table table({"condition", "accuracy", "recall", "precision"});
  common::CsvWriter csv("fig17_wristband.csv", {"condition", "accuracy"});
  ml::ConfusionMatrix total(8,
                            core::class_names(core::LabelScheme::kAllEight));

  for (auto activity : conditions) {
    synth::CollectionConfig config = bench::protocol(*args);
    config.users = 6;
    config.sessions = 2;
    config.activity = activity;
    config.seed = args->seed ^ (static_cast<std::uint64_t>(activity) << 8);
    const auto data = synth::DatasetBuilder(config).collect();
    const auto set = bench::featurize(data, core::LabelScheme::kAllEight);
    common::Rng rng(args->seed ^ 0x3717);
    const auto splits = ml::stratified_kfold(set, 3, rng);
    const auto cm = bench::cross_validate(set, splits,
                                          core::LabelScheme::kAllEight,
                                          /*verbose=*/false);
    table.add_row({std::string(synth::activity_name(activity)),
                   common::Table::pct(cm.accuracy()),
                   common::Table::pct(cm.macro_recall()),
                   common::Table::pct(cm.macro_precision())});
    csv.write_row({std::string(synth::activity_name(activity)),
                   common::Table::num(cm.accuracy(), 4)});
    total.merge(cm);
  }

  common::print_banner(std::cout, "Fig. 17 — wristband conditions");
  table.print(std::cout);
  bench::print_comparison("averaged accuracy across conditions", 0.9717,
                          total.accuracy());
  std::cout << "Paper: 97.17% averaged; shape check: sitting ≥ standing > "
               "walking, with walking still usable.\nWrote "
               "fig17_wristband.csv.\n";
  return 0;
}
