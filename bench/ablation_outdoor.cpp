// Ablation — outdoor operation (the paper's Sec. VI discussion): the
// photodiodes saturate under strong sunlight; frequency modulation with
// synchronous (lock-in) detection is the proposed remedy. This bench sweeps
// the ambient intensity from a dim interior to direct sun and compares the
// standard front end against the lock-in front end.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

enum class FrontEnd { kFixedGain, kAutoGain, kLockIn };

double accuracy_at(double attenuation, FrontEnd mode,
                   const bench::BenchArgs& args) {
  synth::CollectionConfig config = bench::protocol(args);
  config.users = 3;
  config.sessions = 2;
  config.prototype.ambient.indoor_attenuation = attenuation;
  config.prototype.front_end.lock_in = mode == FrontEnd::kLockIn;
  if (mode == FrontEnd::kFixedGain) {
    // The paper's actual chain: gain chosen once, indoors.
    config.auto_gain = false;
    config.prototype.adc.gain = 75.0;
  }
  config.fixed_hour = 13.0;  // midday: the harshest ambient
  config.seed = args.seed ^ static_cast<std::uint64_t>(attenuation * 1e4) ^
                (static_cast<std::uint64_t>(mode) << 20);
  const auto data = synth::DatasetBuilder(config).collect();
  const auto set = bench::featurize(data, core::LabelScheme::kAllEight);
  if (set.size() < 40) return 0.0;  // segmentation collapsed entirely

  common::Rng rng(args.seed ^ 0xAB1A);
  const auto split = ml::stratified_split(set, 0.3, rng);
  core::DetectRecognizer recognizer;
  const auto cm = core::evaluate_split(recognizer, set, split, 8);
  // Unsegmentable samples count as errors against the recorded total.
  const double coverage =
      static_cast<double>(set.size()) / static_cast<double>(data.size());
  return cm.accuracy() * coverage +
         0.0 * (1.0 - coverage);  // missed samples recognize nothing
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_ablation_outdoor",
      "Sec. VI ablation: sunlight intensity vs accuracy, standard front "
      "end vs modulated-LED lock-in");
  if (!args) return 0;

  // Ambient share of the clear-sky NIR irradiance reaching the scene:
  // 0.015 ≈ interior, 0.1 ≈ bright window seat, 0.4 ≈ shade outdoors,
  // 1.0 ≈ direct sun.
  const double levels[] = {0.015, 0.05, 0.15, 0.40, 1.00};

  common::print_banner(std::cout,
                       "Ablation — outdoor ambient vs front end");
  common::Table table({"ambient share", "fixed gain (paper's chain)",
                       "auto-gain", "lock-in"});
  common::CsvWriter csv("ablation_outdoor.csv",
                        {"ambient_share", "fixed_gain", "auto_gain",
                         "lock_in"});
  for (double level : levels) {
    std::cout << "  evaluating ambient share " << level << "...\n";
    const double fixed = accuracy_at(level, FrontEnd::kFixedGain, *args);
    const double auto_gain = accuracy_at(level, FrontEnd::kAutoGain, *args);
    const double lock_in = accuracy_at(level, FrontEnd::kLockIn, *args);
    table.add_row({common::Table::num(level, 3),
                   common::Table::pct(fixed),
                   common::Table::pct(auto_gain),
                   common::Table::pct(lock_in)});
    csv.write_row({common::Table::num(level, 3),
                   common::Table::num(fixed, 4),
                   common::Table::num(auto_gain, 4),
                   common::Table::num(lock_in, 4)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: the paper's fixed-gain chain saturates and "
               "collapses as sunlight grows (its\nSec. VI observation); an "
               "adjustable amplifier survives at reduced resolution; the "
               "modulated-LED\nlock-in front end is essentially flat — the "
               "hardening the paper proposes.\nWrote "
               "ablation_outdoor.csv.\n";
  return 0;
}
