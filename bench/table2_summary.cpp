// Table II — performance summary: per-gesture accuracy of the detect-aimed
// gestures (5-fold CV), scroll-direction accuracy via ZEBRA, and the
// velocity/displacement rating.
//
// The paper's 1–3 rating came from volunteers watching a scrolling
// interface (2.6/3.0 average, 90% noticed no mismatch). Our objective
// surrogate keeps the scale: per scroll, 3 = reconstructed displacement
// within 25% of ground truth (fluent), 2 = within 60% (standard),
// 1 = worse or wrong direction (noticeable mismatch). Velocity is first
// calibrated with one global linear gain, matching the paper's "maps to
// different scales according to application demands".
#include <iostream>

#include "common/csv.hpp"
#include "core/trainer.hpp"
#include "core/zebra.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_table2_summary",
      "Table II: overall performance summary");
  if (!args) return 0;

  // --- Detect-aimed per-gesture accuracy (5-fold CV over all samples).
  const auto data = synth::DatasetBuilder(bench::protocol(*args)).collect();
  const auto set = bench::featurize(data, core::LabelScheme::kAllEight);
  common::Rng rng(args->seed ^ 0x7AB2);
  const auto splits = ml::stratified_kfold(set, 5, rng);
  std::cout << "running 5-fold CV over " << set.size() << " samples...\n";
  const auto cm = bench::cross_validate(set, splits,
                                        core::LabelScheme::kAllEight,
                                        /*verbose=*/false);

  // --- Track-aimed: ZEBRA direction + displacement rating on the scroll
  // samples through the full engine.
  core::TrainerConfig trainer;
  trainer.users = std::max(2, args->users / 2);
  trainer.sessions = 2;
  trainer.repetitions = args->reps;
  trainer.seed = args->seed ^ 0x2B2B;
  core::AirFinger engine = core::build_engine(trainer);

  // Direction accuracy is conditioned on a scroll verdict (the paper's
  // Sec. V-G measures direction recognition); the routing rate itself is
  // reported separately (and measured by bench_fig13).
  int up_total = 0, up_correct = 0, down_total = 0, down_correct = 0;
  int scrolls_seen = 0, scrolls_tracked = 0;
  std::vector<double> truth_v, measured_v;
  std::vector<const synth::GestureSample*> scored;
  std::vector<core::PipelineVerdict> verdicts;
  for (const auto& s : data.samples) {
    if (!synth::is_track_aimed(s.kind)) continue;
    const auto v = core::run_sample(engine, s);
    ++scrolls_seen;
    if (!v.scroll) continue;
    ++scrolls_tracked;
    const bool up = s.kind == synth::MotionKind::kScrollUp;
    (up ? up_total : down_total) += 1;
    if (v.scroll->direction == s.scroll->direction)
      (up ? up_correct : down_correct) += 1;
    if (v.scroll) {
      scored.push_back(&s);
      verdicts.push_back(v);
      if (!v.scroll->used_experience_velocity) {
        truth_v.push_back(s.scroll->mean_velocity_mps);
        measured_v.push_back(v.scroll->velocity_mps);
      }
    }
  }

  // One global velocity calibration gain (least-squares through origin).
  double gain = 1.0;
  if (!truth_v.empty()) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < truth_v.size(); ++i) {
      num += truth_v[i] * measured_v[i];
      den += measured_v[i] * measured_v[i];
    }
    if (den > 0.0) gain = num / den;
  }

  double rating_sum = 0.0;
  int rating_n = 0, fluent = 0;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    const auto& s = *scored[i];
    const auto& v = verdicts[i];
    int rating = 1;
    if (v.scroll->direction == s.scroll->direction) {
      const double measured_d =
          std::fabs(v.scroll->final_displacement()) * gain;
      const double truth_d = s.scroll->displacement_m;
      const double rel_err =
          truth_d > 0.0 ? std::fabs(measured_d - truth_d) / truth_d : 1.0;
      rating = rel_err < 0.25 ? 3 : rel_err < 0.60 ? 2 : 1;
    }
    rating_sum += rating;
    ++rating_n;
    if (rating >= 2) ++fluent;
  }

  // --- Assemble Table II.
  common::print_banner(std::cout, "Table II — performance summary");
  common::Table table({"", "gesture", "paper", "measured"});
  const double paper_acc[] = {0.9926, 0.9872, 0.9769, 0.9762,
                              0.9865, 0.9868};
  const auto names = core::class_names(core::LabelScheme::kAllEight);
  double detect_acc_sum = 0.0;
  for (int c = 0; c < 6; ++c) {
    table.add_row({c == 0 ? "Detect-aimed" : "",
                   names[static_cast<std::size_t>(c)],
                   common::Table::pct(paper_acc[c]),
                   common::Table::pct(cm.class_accuracy(c))});
    detect_acc_sum += cm.class_accuracy(c);
  }
  table.add_row({"", "average (detect)", "98.44%",
                 common::Table::pct(detect_acc_sum / 6.0)});
  const double up_acc =
      up_total ? static_cast<double>(up_correct) / up_total : 0.0;
  const double down_acc =
      down_total ? static_cast<double>(down_correct) / down_total : 0.0;
  table.add_row({"Track-aimed", "scroll up direction", "99.88%",
                 common::Table::pct(up_acc)});
  table.add_row({"", "scroll down direction", "99.26%",
                 common::Table::pct(down_acc)});
  table.add_row({"", "average (track)", "99.57%",
                 common::Table::pct((up_acc + down_acc) / 2.0)});
  const double rating =
      rating_n ? rating_sum / static_cast<double>(rating_n) : 0.0;
  table.add_row({"Track-aimed", "routed to tracker", "-",
                 common::Table::pct(scrolls_seen
                                        ? static_cast<double>(scrolls_tracked) /
                                              scrolls_seen
                                        : 0.0)});
  table.add_row({"Tracking", "velocity & displacement rating", "2.6/3.0",
                 common::Table::num(rating, 1) + "/3.0"});
  const double summary =
      (detect_acc_sum / 6.0) * 6.0 / 8.0 + (up_acc + down_acc) / 8.0;
  table.add_row({"Summary", "average accuracy (8 gestures)", "98.72%",
                 common::Table::pct(summary)});
  table.print(std::cout);
  std::cout << "  " << fluent << "/" << rating_n
            << " scrolls rated >= standard (paper: 90% felt no "
               "mismatch)\n  velocity calibration gain: "
            << common::Table::num(gain, 2) << "\n";

  common::CsvWriter csv("table2_summary.csv", {"metric", "paper",
                                               "measured"});
  for (int c = 0; c < 6; ++c)
    csv.write_row({names[static_cast<std::size_t>(c)],
                   common::Table::num(paper_acc[c], 4),
                   common::Table::num(cm.class_accuracy(c), 4)});
  csv.write_row({"scroll_up_dir", "0.9988", common::Table::num(up_acc, 4)});
  csv.write_row(
      {"scroll_down_dir", "0.9926", common::Table::num(down_acc, 4)});
  csv.write_row({"rating", "2.6", common::Table::num(rating, 2)});
  std::cout << "Wrote table2_summary.csv.\n";
  return 0;
}
