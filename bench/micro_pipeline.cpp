// Microbenchmarks (google-benchmark) backing the paper's real-time and
// processing-efficiency claims: per-sample SBC cost, segmentation,
// feature extraction, RF inference, ZEBRA tracking, and the full streaming
// frame path — plus the SBC-window and forest-size ablations from
// DESIGN.md §5.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/parallel.hpp"
#include "core/data_processor.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "core/zebra.hpp"
#include "dsp/dynamic_threshold.hpp"
#include "dsp/sbc.hpp"
#include "features/bank.hpp"
#include "ml/random_forest.hpp"
#include "synth/dataset.hpp"

using namespace airfinger;

namespace {

const synth::Dataset& sample_data() {
  static const synth::Dataset data = [] {
    synth::CollectionConfig config;
    config.users = 1;
    config.sessions = 1;
    config.repetitions = 2;
    config.seed = 0xBE7C;
    return synth::DatasetBuilder(config).collect();
  }();
  return data;
}

const synth::GestureSample& scroll_sample() {
  for (const auto& s : sample_data().samples)
    if (s.kind == synth::MotionKind::kScrollUp) return s;
  return sample_data().samples.front();
}

}  // namespace

// --- SBC per sample (the paper claims O(n); this is the per-frame cost).
static void BM_SbcPush(benchmark::State& state) {
  dsp::SquareBasedCalculator sbc(static_cast<std::size_t>(state.range(0)));
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sbc.push(v));
    v += 1.0;
  }
}
BENCHMARK(BM_SbcPush)->Arg(1)->Arg(5)->Arg(25);

// --- Streaming segmenter per sample.
static void BM_SegmenterPush(benchmark::State& state) {
  dsp::DynamicThresholdSegmenter seg{dsp::SegmenterConfig{}};
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seg.push(rng.uniform(0.0, 100.0)));
  }
}
BENCHMARK(BM_SegmenterPush);

// --- Batch segmentation of a full trace.
static void BM_BatchSegmentation(benchmark::State& state) {
  const auto& s = sample_data().samples.front();
  const core::DataProcessor proc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.process(s.trace));
  }
}
BENCHMARK(BM_BatchSegmentation);

// --- Feature extraction for one segment.
static void BM_FeatureExtraction(benchmark::State& state) {
  const auto& s = sample_data().samples.front();
  const core::DataProcessor proc;
  const auto p = proc.process(s.trace);
  const auto seg = core::DataProcessor::select_segment(p, 0,
                                                       p.energy.size());
  std::vector<std::span<const double>> windows;
  for (const auto& ch : p.delta_rss2)
    windows.emplace_back(ch.data() + seg.begin, seg.length());
  const features::FeatureBank bank;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bank.extract(std::span<const std::span<const double>>(windows)));
  }
}
BENCHMARK(BM_FeatureExtraction);

// --- RF inference across forest sizes (the forest-size ablation).
static void BM_ForestPredict(benchmark::State& state) {
  const auto& data = sample_data();
  const core::DataProcessor proc;
  const features::FeatureBank bank;
  const auto set = core::build_feature_set(data, proc, bank,
                                           core::LabelScheme::kAllEight);
  ml::RandomForestConfig config;
  config.num_trees = static_cast<std::size_t>(state.range(0));
  ml::RandomForest forest(config);
  forest.fit(set);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(set.features[i]));
    i = (i + 1) % set.size();
  }
}
BENCHMARK(BM_ForestPredict)->Arg(10)->Arg(50)->Arg(150);

// --- ZEBRA tracking of one scroll segment.
static void BM_ZebraTrack(benchmark::State& state) {
  const auto& s = scroll_sample();
  const core::DataProcessor proc;
  const auto p = proc.process(s.trace);
  const auto seg = core::DataProcessor::select_segment(p, 0,
                                                       p.energy.size());
  const core::ZebraTracker zebra;
  for (auto _ : state) {
    benchmark::DoNotOptimize(zebra.track(p, seg));
  }
}
BENCHMARK(BM_ZebraTrack);

// --- Full streaming frame path (the real-time budget: must be far below
// the 10 ms frame interval of the 100 Hz prototype).
static void BM_EnginePushFrame(benchmark::State& state) {
  static core::AirFinger engine = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 4;
    config.seed = 0xE11;
    return core::build_engine(config);
  }();
  const auto& s = sample_data().samples.front();
  std::vector<double> frame(3);
  std::size_t i = 0;
  std::size_t events = 0;
  const auto sink = [&events](const core::GestureEvent&) { ++events; };
  for (auto _ : state) {
    for (std::size_t c = 0; c < 3; ++c)
      frame[c] = s.trace.channel(c)[i];
    engine.push_frame(frame, sink);
    i = (i + 1) % s.trace.sample_count();
    if (i == 0) {
      state.PauseTiming();
      engine.reset();
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_EnginePushFrame);

// --- Dataset synthesis cost (substrate throughput).
static void BM_SynthesizeSample(benchmark::State& state) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.kinds = {synth::MotionKind::kCircle};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(synth::DatasetBuilder(config).collect());
  }
}
BENCHMARK(BM_SynthesizeSample);

// --- Thread scaling: wall-clock of the two dominant offline costs
// (dataset synthesis, forest training) at 1/2/N pool threads, emitted as
// JSON alongside the google-benchmark output. The determinism suite
// guarantees the outputs are bit-identical across these runs; this report
// tracks how much wall-clock the parallel substrate buys.
namespace {

/// One untimed warmup run (page-faults the working set, spins the thread
/// pool up, settles CPU clocks), then the median of `rounds` timed runs —
/// robust to a single preempted outlier in either direction, where
/// best-of rewards a lucky run and mean punishes one stall.
double time_median_of(int rounds, const std::function<void()>& fn) {
  fn();  // warmup, untimed
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void write_thread_scaling_report(const std::string& path) {
  std::vector<std::size_t> counts{1, 2};
  const std::size_t native = common::resolve_thread_count();
  counts.push_back(native > 4 ? native : 4);

  synth::CollectionConfig synth_config;
  synth_config.users = 2;
  synth_config.sessions = 1;
  synth_config.repetitions = 4;
  synth_config.seed = 0xBE7C;

  // Training workload: featurize once (serial), then time RF fits.
  const synth::Dataset train_data =
      synth::DatasetBuilder(synth_config).collect();
  const core::DataProcessor proc;
  const features::FeatureBank bank;
  const auto set = core::build_feature_set(train_data, proc, bank,
                                           core::LabelScheme::kAllEight);
  ml::RandomForestConfig forest_config;
  forest_config.num_trees = 100;

  std::vector<double> synthesis_s, training_s;
  for (std::size_t threads : counts) {
    common::ScopedThreads scoped(threads);
    synthesis_s.push_back(time_median_of(3, [&] {
      benchmark::DoNotOptimize(
          synth::DatasetBuilder(synth_config).collect());
    }));
    training_s.push_back(time_median_of(3, [&] {
      ml::RandomForest forest(forest_config);
      forest.fit(set);
      benchmark::DoNotOptimize(forest);
    }));
  }

  const auto emit = [&](std::ostream& os) {
    os << "{\n  \"hardware_threads\": " << native << ",\n";
    os << "  \"threads\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "") << counts[i];
    os << "],\n  \"synthesis_s\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "") << synthesis_s[i];
    os << "],\n  \"training_s\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "") << training_s[i];
    os << "],\n  \"synthesis_speedup\": "
       << synthesis_s.front() / synthesis_s.back()
       << ",\n  \"training_speedup\": "
       << training_s.front() / training_s.back() << "\n}\n";
  };
  std::ofstream file(path);
  emit(file);
  std::cout << "thread-scaling report (" << path << "):\n";
  emit(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  write_thread_scaling_report("micro_pipeline_threads.json");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
