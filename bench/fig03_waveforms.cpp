// Fig. 3 — characteristic RSS readings of the eight gestures.
//
// Regenerates the paper's waveform gallery: one repetition of each gesture,
// rendered as an ASCII plot of the summed RSS and written to CSV for
// re-plotting. The qualitative shapes to verify against the paper: smooth
// periodic modulation for circle (twice for double circle), fast bursty
// oscillation for rub, one/two sharp spikes for click/double click, and a
// single travelling hump for the scrolls.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

void ascii_plot(std::span<const double> y, std::size_t rows = 12,
                std::size_t cols = 72) {
  const double lo = common::min(y), hi = common::max(y);
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<std::string> grid(rows, std::string(cols, ' '));
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t i = c * (y.size() - 1) / (cols - 1);
    const auto r = static_cast<std::size_t>(
        (1.0 - (y[i] - lo) / span) * static_cast<double>(rows - 1));
    grid[r][c] = '*';
  }
  for (const auto& row : grid) std::cout << "  |" << row << "\n";
  std::cout << "  +" << std::string(cols, '-') << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig03_waveforms",
      "Fig. 3: characteristic RSS readings of the eight gestures");
  if (!args) return 0;

  synth::CollectionConfig config = bench::protocol(*args);
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.partial_scroll_probability = 0.0;
  const auto data = synth::DatasetBuilder(config).collect();

  common::CsvWriter csv("fig03_waveforms.csv",
                        {"gesture", "sample", "rss_sum", "p1", "p2", "p3"});
  for (const auto& s : data.samples) {
    common::print_banner(std::cout,
                         std::string("Fig. 3 — ") +
                             std::string(synth::motion_name(s.kind)));
    const auto sum = s.trace.summed();
    const double rate = s.trace.sample_rate_hz();
    const auto g0 = static_cast<std::size_t>(s.gesture_start_s * rate);
    const auto g1 = std::min<std::size_t>(
        static_cast<std::size_t>(s.gesture_end_s * rate), sum.size());
    ascii_plot(std::span<const double>(sum.data() + g0, g1 - g0));
    for (std::size_t i = 0; i < sum.size(); ++i)
      csv.write_row({std::string(synth::motion_name(s.kind)),
                     std::to_string(i), common::Table::num(sum[i], 1),
                     common::Table::num(s.trace.channel(0)[i], 1),
                     common::Table::num(s.trace.channel(1)[i], 1),
                     common::Table::num(s.trace.channel(2)[i], 1)});
  }
  std::cout << "\nWrote per-sample series to fig03_waveforms.csv ("
            << csv.rows_written() << " rows).\n"
            << "Shape check vs the paper: circle/double circle smooth and "
               "periodic, rub/double rub fast bursts,\nclick/double click "
               "one/two sharp spikes, scrolls a single travelling hump.\n";
  return 0;
}
