// Fig. 12 — impact of gesture inconsistency: leave-one-session-out
// evaluation of the six detect-aimed gestures.
//
// Paper: training on 4 sessions of each user and testing on the remaining
// one gives 97.07% — only slightly below the same-session 98.44%, showing
// that a pre-trained classifier survives day-to-day variation. The
// characteristic failure the paper reports (slow double rubs splitting into
// two rubs) is also counted here.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig12_sessions",
      "Fig. 12: leave-one-session-out (gesture inconsistency)");
  if (!args) return 0;

  const auto data = synth::DatasetBuilder(bench::protocol(*args)).collect();
  const auto set = bench::featurize(data, core::LabelScheme::kDetectSix,
                                    core::GroupScheme::kSession);
  const auto splits = ml::leave_one_group_out(set);
  std::cout << "evaluating " << splits.size()
            << " leave-one-session-out combinations...\n";

  ml::ConfusionMatrix total(core::class_count(core::LabelScheme::kDetectSix),
                            core::class_names(core::LabelScheme::kDetectSix));
  common::CsvWriter csv("fig12_per_session.csv", {"session", "accuracy"});
  int session = 0;
  for (const auto& split : splits) {
    core::DetectRecognizer recognizer;
    const auto cm = core::evaluate_split(
        recognizer, set, split,
        core::class_count(core::LabelScheme::kDetectSix));
    std::cout << "  held-out session " << session << ": "
              << common::Table::pct(cm.accuracy()) << "\n";
    csv.write_row({std::to_string(session),
                   common::Table::num(cm.accuracy(), 4)});
    total.merge(cm);
    ++session;
  }

  bench::print_summary("Fig. 12 — gesture inconsistency (LOSO)", total,
                       0.9707);
  // The paper's characteristic confusion: double rub recognized as rub.
  const auto names = core::class_names(core::LabelScheme::kDetectSix);
  const int rub = 2, double_rub = 3;
  std::cout << "  double rub → rub confusion: "
            << common::Table::pct(total.rate(double_rub, rub))
            << " (the paper's slow-double-rub failure mode)\n"
            << "Paper: 97.07% average; recall 91.28% / precision 91.11%; "
               "shape check: between the LOUO result (Fig. 11) and the "
               "same-session result (Fig. 10).\nWrote "
               "fig12_per_session.csv.\n";
  return 0;
}
