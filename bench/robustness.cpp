// bench_robustness — the tracked artifact-detection quality baseline.
//
// Measures the graded artifact layer (DESIGN.md §17) the way the serving
// path uses it: a FaultPolicy whose thresholds are derived from the clean
// corpus (the deployment recipe from core/health.hpp), storm traffic from
// the seeded FaultInjector at bench-default rates, and the per-class
// detection counters from obs::Registry. The JSON report
// (BENCH_robustness.json via tools/run_bench.sh) records, and the exit
// status gates:
//
//   * per-class detection rate: classified episodes / injected episodes,
//     for impulse, crackle, step, drift, and flicker storms;
//   * the false-positive gate on clean traffic: zero repair/escalation
//     actions, emissions byte-identical to strict mode, and the graded
//     suspect rate (the false-alarm proxy counters);
//   * the repaired-vs-unrepaired accuracy delta: gesture-event recall
//     against the clean trace's emissions with impulse repair on vs off;
//   * allocations per frame on both clean and storm traffic via this
//     binary's own counting operator-new hook — the artifact path rides
//     the 0-alloc hot path, held frames and all.
//
// --smoke shrinks the substrate for CI gating (tools/run_checks.sh
// --robustness-smoke); gates are identical, only the sample is smaller.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <iostream>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "sensor/artifact.hpp"
#include "sensor/fault_injector.hpp"
#include "support.hpp"

// ------------------------------------------------------------ alloc hook
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace airfinger;

// ------------------------------------------------- policy derivation

/// Clean-corpus ceilings of the detector quantities the policy gates on.
struct CleanProfile {
  double ceiling = 0.0;  ///< max |x|.
  double max_dx = 0.0;   ///< max |x_t - x_{t-1}|.
  double max_vel = 0.0;  ///< max |EWMA baseline velocity| (warmed up).
};

CleanProfile measure_profile(const sensor::MultiChannelTrace& trace) {
  CleanProfile out;
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    sensor::ChannelArtifactDetector det;
    const auto ch = trace.channel(c);
    for (std::size_t i = 0; i < ch.size(); ++i) {
      out.ceiling = std::max(out.ceiling, std::abs(ch[i]));
      if (i > 0)
        out.max_dx = std::max(out.max_dx, std::abs(ch[i] - ch[i - 1]));
      det.accept(ch[i]);
      if (det.warmed_up())
        out.max_vel = std::max(out.max_vel, std::abs(det.baseline_velocity()));
    }
  }
  return out;
}

/// The deployment recipe: repair floor above the worst clean step times a
/// full repair gap, drift threshold above the worst clean baseline bend,
/// saturation rail far enough out that the artifact layer owns the storms.
core::FaultPolicy derive_policy(const CleanProfile& profile) {
  core::FaultPolicy policy;
  policy.enabled = true;
  const double floor = 6.0 * profile.max_dx + 32.0;
  policy.saturation_level = profile.ceiling + 8.0 * floor;
  policy.saturation_run_limit = 8;
  policy.stuck_run_limit = 32;
  policy.recovery_frames = 32;
  policy.artifact.repair = true;
  policy.artifact.repair_z = 6.0;
  policy.artifact.repair_min_step = floor;
  policy.artifact.escalate = true;
  policy.artifact.detector.drift_velocity =
      std::max(2.0 * profile.max_vel, 0.05);
  return policy;
}

// ------------------------------------------------------ replay harness

struct Replay {
  std::vector<core::GestureEvent> events;
  std::uint64_t frames = 0;
  double allocs_per_frame = 0.0;
  std::uint64_t impulse_suspects = 0;
  std::uint64_t impulse_detected = 0;
  std::uint64_t impulse_repaired = 0;
  std::uint64_t crackle_detected = 0;
  std::uint64_t step_detected = 0;
  std::uint64_t drift_detected = 0;
  std::uint64_t flicker_detected = 0;
  std::uint64_t artifact_quarantines = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t recalibrations = 0;
};

/// Feeds `trace` through a fresh session frame by frame, measuring the
/// allocation count of the replay itself (per-session buffers reach their
/// high-water mark during a warmup pass over the first 128 frames).
Replay replay(const std::shared_ptr<const core::ModelBundle>& bundle,
              const core::FaultPolicy& policy,
              const sensor::MultiChannelTrace& trace) {
  Replay out;
  core::Session session(bundle, policy);
  std::vector<double> frame(trace.channel_count());
  out.events.reserve(64);
  const auto sink = [&out](const core::GestureEvent& e) {
    out.events.push_back(e);
  };
  // Warmup: one full pass grows every per-session buffer (and this
  // harness's event vector) to its high-water mark; reset restores the
  // streaming state so the measured pass sees the whole trace from a cold
  // stream but warm allocations. clear() keeps the vector's capacity.
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < frame.size(); ++c)
      frame[c] = trace.channel(c)[i];
    session.push_frame(frame, sink);
  }
  session.finish(sink);
  session.reset();
  out.events.clear();

  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < trace.sample_count(); ++i) {
    for (std::size_t c = 0; c < frame.size(); ++c)
      frame[c] = trace.channel(c)[i];
    session.push_frame(frame, sink);
  }
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);
  session.finish(sink);

  out.frames = session.health().frames;
  out.allocs_per_frame = static_cast<double>(allocs_after - allocs_before) /
                         static_cast<double>(trace.sample_count());
  const auto& obs = session.observability();
  const auto counter = [&](obs::Registry::Handle h) {
    return obs.registry().counter_value(h);
  };
  out.impulse_suspects = counter(obs.artifact_impulse_suspect);
  out.impulse_detected = counter(obs.artifact_impulse_detected);
  out.impulse_repaired = counter(obs.artifact_impulse_repaired);
  out.crackle_detected = counter(obs.artifact_crackle_detected);
  out.step_detected = counter(obs.artifact_step_detected);
  out.drift_detected = counter(obs.artifact_drift_detected);
  out.flicker_detected = counter(obs.artifact_flicker_detected);
  out.artifact_quarantines = counter(obs.artifact_quarantines);
  out.quarantines = session.health().quarantines;
  out.recalibrations = session.health().recalibrations;
  return out;
}

bool events_identical(const std::vector<core::GestureEvent>& a,
                      const std::vector<core::GestureEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].time_s != b[i].time_s ||
        a[i].gesture != b[i].gesture ||
        a[i].segment_begin != b[i].segment_begin ||
        a[i].segment_end != b[i].segment_end ||
        a[i].scroll.has_value() != b[i].scroll.has_value())
      return false;
    if (a[i].scroll &&
        (a[i].scroll->direction != b[i].scroll->direction ||
         a[i].scroll->velocity_mps != b[i].scroll->velocity_mps ||
         a[i].scroll->duration_s != b[i].scroll->duration_s))
      return false;
  }
  return true;
}

/// Fraction of the clean trace's events a storm replay recovered: greedy
/// in-order matching on (type, gesture label, segment start within a few
/// frames) — the accuracy proxy behind the repaired-vs-unrepaired delta.
double event_recall(const std::vector<core::GestureEvent>& clean,
                    const std::vector<core::GestureEvent>& storm) {
  if (clean.empty()) return 1.0;
  std::size_t matched = 0;
  std::size_t next = 0;
  for (const auto& want : clean) {
    for (std::size_t j = next; j < storm.size(); ++j) {
      const auto& got = storm[j];
      const auto begin_delta =
          got.segment_begin > want.segment_begin
              ? got.segment_begin - want.segment_begin
              : want.segment_begin - got.segment_begin;
      if (got.type == want.type && got.gesture == want.gesture &&
          begin_delta <= 8) {
        ++matched;
        next = j + 1;
        break;
      }
    }
  }
  return static_cast<double>(matched) / static_cast<double>(clean.size());
}

/// Merges an injector log into per-class episode counts, coalescing
/// events of one class whose spans overlap or touch across channels (a
/// crackle train hits one channel but the session classifies per stream).
std::size_t count_episodes(const std::vector<sensor::FaultEvent>& log,
                           sensor::FaultEvent::Kind kind,
                           std::size_t merge_gap) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (const auto& e : log)
    if (e.kind == kind) spans.emplace_back(e.begin, e.end);
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end());
  std::size_t episodes = 1;
  std::size_t end = spans.front().second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first > end + merge_gap) {
      ++episodes;
      end = spans[i].second;
    } else {
      end = std::max(end, spans[i].second);
    }
  }
  return episodes;
}

struct ClassResult {
  const char* name = "";
  std::size_t episodes = 0;
  std::uint64_t detections = 0;
  double detection_rate = 0.0;
  double gate = 0.0;
  double allocs_per_frame = 0.0;
  std::uint64_t quarantines = 0;
  std::uint64_t recalibrations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("bench_robustness",
                  "artifact detection/repair quality baseline");
  cli.add_flag("smoke", "0", "1 = small CI substrate, same gates");
  cli.add_flag("out", "BENCH_robustness.json", "JSON report path");
  const auto args = bench::parse_args(
      argc, argv, "bench_robustness",
      "artifact detection/repair quality baseline", &cli);
  if (!args) return 0;
  const bool smoke = cli.get_int("smoke") != 0;

  std::cout << "training the shared bundle...\n";
  const auto bundle = bench::train_bundle(*args);

  // A long gesture-dense substrate: slow-class storms (400-sample drift
  // ramps, 600-sample flicker episodes) need room to play out against the
  // sustain windows.
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,     synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp,   synth::MotionKind::kRub,
      synth::MotionKind::kScrollDown, synth::MotionKind::kDoubleClick,
  };
  std::vector<synth::MotionKind> kinds;
  for (int rep = 0; rep < (smoke ? 2 : 6); ++rep)
    kinds.insert(kinds.end(), mix.begin(), mix.end());
  synth::CollectionConfig stream_config;
  stream_config.users = 1;
  stream_config.seed = args->seed ^ 0xAB0Bu;
  const auto stream =
      synth::make_gesture_stream(stream_config, kinds, stream_config.seed);
  const sensor::MultiChannelTrace& clean = stream.trace;
  std::cout << "substrate: " << clean.sample_count() << " samples x "
            << clean.channel_count() << " channels\n";

  const CleanProfile profile = measure_profile(clean);
  const core::FaultPolicy policy = derive_policy(profile);
  const double floor = policy.artifact.repair_min_step;
  std::cout << "derived policy: repair floor " << floor << ", drift velocity "
            << policy.artifact.detector.drift_velocity << ", rail "
            << policy.saturation_level << "\n";

  bool gates_ok = true;
  const auto gate_check = [&gates_ok](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "bench_robustness: GATE FAILED — " << what << "\n";
      gates_ok = false;
    }
  };

  // ---- clean traffic: byte identity, zero actions, suspect rate, allocs.
  std::cout << "clean traffic...\n";
  const Replay strict = replay(bundle, core::FaultPolicy{}, clean);
  const Replay graded = replay(bundle, policy, clean);
  const bool byte_identical = events_identical(strict.events, graded.events);
  const std::uint64_t clean_actions =
      graded.impulse_detected + graded.artifact_quarantines;
  const double suspect_rate =
      static_cast<double>(graded.impulse_suspects) /
      static_cast<double>(graded.frames);
  gate_check(byte_identical, "clean emissions differ from strict mode");
  gate_check(clean_actions == 0, "artifact actions fired on clean traffic");
  gate_check(graded.allocs_per_frame == 0.0,
             "clean hot path allocated with detectors active");
  std::cout << "  byte_identical=" << byte_identical << " actions="
            << clean_actions << " suspect_rate=" << suspect_rate
            << " allocs/frame=" << graded.allocs_per_frame << "\n";

  // ---- per-class storms at the bench-default rates.
  const double magnitude = 4.0 * floor;
  std::vector<ClassResult> classes;
  const auto run_class =
      [&](const char* name, double gate,
          const std::function<void(sensor::FaultInjectorConfig&)>& configure,
          const std::function<void(core::FaultPolicy&)>& adjust,
          sensor::FaultEvent::Kind kind, std::size_t merge_gap,
          const std::function<std::uint64_t(const Replay&)>& detections) {
        sensor::FaultInjectorConfig config;
        configure(config);
        sensor::FaultInjector injector(config, 7777);
        const auto corrupted = injector.corrupt(clean);
        core::FaultPolicy storm_policy = policy;
        if (adjust) adjust(storm_policy);
        const Replay r = replay(bundle, storm_policy, corrupted);
        ClassResult result;
        result.name = name;
        result.episodes = count_episodes(injector.log(), kind, merge_gap);
        result.detections = detections(r);
        result.detection_rate =
            result.episodes == 0
                ? 0.0
                : std::min(1.0, static_cast<double>(result.detections) /
                                    static_cast<double>(result.episodes));
        result.gate = gate;
        result.allocs_per_frame = r.allocs_per_frame;
        result.quarantines = r.quarantines;
        result.recalibrations = r.recalibrations;
        classes.push_back(result);
        gate_check(result.episodes > 0,
                   std::string(name) + ": storm injected no episodes");
        gate_check(result.detection_rate >= gate,
                   std::string(name) + ": detection rate " +
                       std::to_string(result.detection_rate) + " < " +
                       std::to_string(gate));
        gate_check(r.allocs_per_frame == 0.0,
                   std::string(name) + ": storm path allocated");
        std::cout << "  " << name << ": episodes=" << result.episodes
                  << " detections=" << result.detections << " rate="
                  << result.detection_rate << " (gate " << gate
                  << ") quarantines=" << r.quarantines << " allocs/frame="
                  << r.allocs_per_frame << "\n";
        return r;
      };

  std::cout << "storm traffic...\n";
  // Impulse: repaired episodes over injected glitches; escalation off so
  // the crackle rate monitor cannot eat the tail of a dense run.
  const Replay impulse_run = run_class(
      "impulse", 0.5,
      [&](sensor::FaultInjectorConfig& c) {
        c.glitch_rate = 0.004;
        c.glitch_magnitude = magnitude;
      },
      [](core::FaultPolicy& p) { p.artifact.escalate = false; },
      sensor::FaultEvent::Kind::kGlitch, 8,
      [](const Replay& r) { return r.impulse_repaired; });

  run_class(
      "crackle", 0.25,
      [&](sensor::FaultInjectorConfig& c) {
        c.crackle_rate = 0.0008;
        c.crackle_magnitude = magnitude;
      },
      nullptr, sensor::FaultEvent::Kind::kCrackle, 64,
      [](const Replay& r) { return r.crackle_detected; });

  run_class(
      "step", 0.25,
      [&](sensor::FaultInjectorConfig& c) {
        c.step_rate = 0.0008;
        c.step_magnitude = magnitude;
      },
      nullptr, sensor::FaultEvent::Kind::kStep, 64,
      [](const Replay& r) { return r.step_detected; });

  run_class(
      "drift", 0.25,
      [&](sensor::FaultInjectorConfig& c) {
        c.drift_rate = 0.0008;
        c.drift_run = 400;
        c.drift_magnitude = 8.0 * policy.artifact.detector.drift_velocity *
                            static_cast<double>(c.drift_run);
      },
      [](core::FaultPolicy& p) {
        p.saturation_level = std::numeric_limits<double>::infinity();
      },
      sensor::FaultEvent::Kind::kDrift, 400,
      [](const Replay& r) { return r.drift_detected; });

  run_class(
      "flicker", 0.25,
      [&](sensor::FaultInjectorConfig& c) {
        c.flicker_rate = 0.0008;
        c.flicker_run = 600;
        c.flicker_period = 8;
        c.flicker_magnitude = 4.0 * profile.max_dx;
      },
      nullptr, sensor::FaultEvent::Kind::kFlicker, 600,
      [](const Replay& r) { return r.flicker_detected; });

  // ---- repaired-vs-unrepaired accuracy delta on the impulse storm.
  std::cout << "repair accuracy delta...\n";
  sensor::FaultInjectorConfig impulse_config;
  impulse_config.glitch_rate = 0.004;
  impulse_config.glitch_magnitude = magnitude;
  sensor::FaultInjector impulse_injector(impulse_config, 7777);
  const auto impulse_trace = impulse_injector.corrupt(clean);
  core::FaultPolicy no_repair = policy;
  no_repair.artifact.repair = false;
  no_repair.artifact.escalate = false;
  const Replay unrepaired = replay(bundle, no_repair, impulse_trace);
  const double recall_repaired =
      event_recall(graded.events, impulse_run.events);
  const double recall_unrepaired =
      event_recall(graded.events, unrepaired.events);
  gate_check(recall_repaired >= recall_unrepaired,
             "repair reduced event recall under the impulse storm");
  std::cout << "  recall repaired=" << recall_repaired << " unrepaired="
            << recall_unrepaired << " delta="
            << recall_repaired - recall_unrepaired << "\n";

  // ------------------------------------------------------------- report
  const auto emit = [&](std::ostream& os) {
    os << "{\n";
    os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    os << "  \"substrate_samples\": " << clean.sample_count() << ",\n";
    os << "  \"repair_min_step\": " << floor << ",\n";
    os << "  \"drift_velocity_threshold\": "
       << policy.artifact.detector.drift_velocity << ",\n";
    os << "  \"clean\": {\"byte_identical\": "
       << (byte_identical ? "true" : "false")
       << ", \"action_false_positives\": " << clean_actions
       << ", \"impulse_suspect_rate\": " << suspect_rate
       << ", \"allocs_per_frame\": " << graded.allocs_per_frame
       << ", \"frames\": " << graded.frames << "},\n";
    os << "  \"classes\": [";
    for (std::size_t i = 0; i < classes.size(); ++i) {
      const ClassResult& r = classes[i];
      os << (i ? ", " : "") << "{\"name\": \"" << r.name
         << "\", \"episodes\": " << r.episodes
         << ", \"detections\": " << r.detections
         << ", \"detection_rate\": " << r.detection_rate
         << ", \"gate\": " << r.gate
         << ", \"quarantines\": " << r.quarantines
         << ", \"recalibrations\": " << r.recalibrations
         << ", \"allocs_per_frame\": " << r.allocs_per_frame << "}";
    }
    os << "],\n";
    os << "  \"repair_recall\": {\"clean_events\": " << graded.events.size()
       << ", \"repaired\": " << recall_repaired
       << ", \"unrepaired\": " << recall_unrepaired
       << ", \"delta\": " << recall_repaired - recall_unrepaired << "},\n";
    os << "  \"gates\": \"" << (gates_ok ? "pass" : "fail") << "\"\n";
    os << "}\n";
  };
  std::ofstream file(cli.get("out"));
  emit(file);
  std::cout << "\nrobustness report (" << cli.get("out") << "):\n";
  emit(std::cout);
  if (!gates_ok) {
    std::cerr << "bench_robustness: FAIL — one or more gates missed\n";
    return 1;
  }
  return 0;
}
