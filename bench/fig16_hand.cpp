// Fig. 16 — impact of the dominant hand: gestures performed with the
// non-dominant (left) hand, prototype oriented accordingly.
//
// Paper: 6 right-handed volunteers × 2 sessions × 20 repetitions, 3-fold
// CV; average accuracy above 95% (recall 95.10%, precision 95.13%) — only
// slightly below dominant-hand performance.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig16_hand",
      "Fig. 16: non-dominant hand performance (3-fold CV)");
  if (!args) return 0;

  auto run = [&](bool non_dominant) {
    synth::CollectionConfig config = bench::protocol(*args);
    config.users = 6;
    config.sessions = 2;
    config.non_dominant_hand = non_dominant;
    config.seed = args->seed;  // the same six volunteers use either hand
    const auto data = synth::DatasetBuilder(config).collect();
    const auto set = bench::featurize(data, core::LabelScheme::kAllEight);
    common::Rng rng(args->seed ^ 0x9A9D);
    const auto splits = ml::stratified_kfold(set, 3, rng);
    return bench::cross_validate(set, splits, core::LabelScheme::kAllEight,
                                 /*verbose=*/false);
  };

  std::cout << "evaluating dominant hand...\n";
  const auto dominant = run(false);
  std::cout << "evaluating non-dominant hand...\n";
  const auto non_dominant = run(true);

  bench::print_summary("Fig. 16 — non-dominant hand", non_dominant, 0.95);
  common::Table table({"hand", "accuracy", "recall", "precision"});
  table.add_row({"dominant", common::Table::pct(dominant.accuracy()),
                 common::Table::pct(dominant.macro_recall()),
                 common::Table::pct(dominant.macro_precision())});
  table.add_row({"non-dominant",
                 common::Table::pct(non_dominant.accuracy()),
                 common::Table::pct(non_dominant.macro_recall()),
                 common::Table::pct(non_dominant.macro_precision())});
  table.print(std::cout);

  common::CsvWriter csv("fig16_hand.csv", {"hand", "accuracy"});
  csv.write_row({"dominant", common::Table::num(dominant.accuracy(), 4)});
  csv.write_row(
      {"non-dominant", common::Table::num(non_dominant.accuracy(), 4)});
  std::cout << "Paper: non-dominant above 95%, slightly below dominant. "
               "Shape check: a small but visible gap in the same "
               "direction.\nWrote fig16_hand.csv.\n";
  return 0;
}
