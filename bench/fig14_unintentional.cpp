// Fig. 14 — impact of unintentional motions: the gesture / non-gesture
// interference filter (Sec. IV-F) under the paper's protocol (6 volunteers,
// 2 sessions, 25 gestures + 25 non-gestures each, 3-fold CV).
//
// Paper: average accuracy 94.83%, recall 94.83%, precision 94.88%.
#include <iostream>

#include "common/csv.hpp"
#include "core/interference_filter.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig14_unintentional",
      "Fig. 14: gesture vs unintentional-motion filtering (3-fold CV)");
  if (!args) return 0;

  // The paper's protocol: 6 volunteers × 2 sessions, equal numbers of
  // designed gestures and non-gestures.
  synth::CollectionConfig config = bench::protocol(*args);
  config.users = 6;
  config.sessions = 2;
  config.kinds.insert(config.kinds.end(), synth::non_gestures().begin(),
                      synth::non_gestures().end());
  const auto data = synth::DatasetBuilder(config).collect();
  const auto set =
      bench::featurize(data, core::LabelScheme::kGestureVsNonGesture);
  std::cout << "binary set: " << set.size() << " samples\n";

  common::Rng rng(args->seed ^ 0x14);
  const auto splits = ml::stratified_kfold(set, 3, rng);

  ml::ConfusionMatrix total(2, {"non-gesture", "gesture"});
  const features::FeatureBank bank;
  for (const auto& split : splits) {
    core::InterferenceFilter filter(bank);
    filter.fit(set.subset(split.train));
    for (std::size_t i : split.test)
      total.add(set.labels[i],
                filter.is_gesture(set.features[i]) ? 1 : 0);
  }

  bench::print_summary("Fig. 14 — unintentional motions", total, 0.9483);
  bench::print_comparison("gesture recall", 0.9483, total.recall(1));
  bench::print_comparison("gesture precision", 0.9488, total.precision(1));

  // Which 9 features the RF importance feedback selected (the paper's
  // Table I bold subset analogue).
  core::InterferenceFilter full(bank);
  full.fit(set);
  std::cout << "  selected filter features:";
  for (std::size_t idx : full.feature_indices())
    std::cout << " " << bank.names()[idx];
  std::cout << "\n";

  common::CsvWriter csv("fig14_confusion.csv",
                        {"truth", "predicted", "rate"});
  const char* names[] = {"non-gesture", "gesture"};
  for (int t = 0; t < 2; ++t)
    for (int p = 0; p < 2; ++p)
      csv.write_row({names[t], names[p],
                     common::Table::num(total.rate(t, p), 4)});
  std::cout << "Wrote fig14_confusion.csv.\n";
  return 0;
}
