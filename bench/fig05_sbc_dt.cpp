// Fig. 5 — results of the SBC and DT algorithms: noise mitigation and
// gesture segmentation on a continuous multi-gesture stream.
//
// Reproduces the paper's before/after demonstration: (a) original RSS
// readings with ambient noise and hand reflections, (b) ΔRSS² after SBC
// with the dynamically thresholded gesture segments. Also runs the
// fixed-vs-dynamic-threshold ablation DESIGN.md calls out.
#include <iostream>

#include "common/csv.hpp"
#include "dsp/dynamic_threshold.hpp"
#include "dsp/sbc.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

/// Intersection-over-union of a detected segment set against ground truth.
double segmentation_iou(
    const std::vector<dsp::Segment>& detected,
    const std::vector<std::pair<std::size_t, std::size_t>>& truth) {
  double total_iou = 0.0;
  for (const auto& [b, e] : truth) {
    double best = 0.0;
    for (const auto& seg : detected) {
      const double inter =
          static_cast<double>(std::min(seg.end, e)) -
          static_cast<double>(std::max(seg.begin, b));
      if (inter <= 0.0) continue;
      const double uni = static_cast<double>(std::max(seg.end, e) -
                                             std::min(seg.begin, b));
      best = std::max(best, inter / uni);
    }
    total_iou += best;
  }
  return truth.empty() ? 0.0 : total_iou / static_cast<double>(truth.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig05_sbc_dt",
      "Fig. 5: SBC noise mitigation + DT gesture segmentation");
  if (!args) return 0;

  synth::CollectionConfig config = bench::protocol(*args);
  const std::vector<synth::MotionKind> sequence{
      synth::MotionKind::kCircle,     synth::MotionKind::kClick,
      synth::MotionKind::kRub,        synth::MotionKind::kDoubleClick,
      synth::MotionKind::kScrollUp,   synth::MotionKind::kDoubleRub,
  };
  const auto stream = synth::make_gesture_stream(config, sequence,
                                                 args->seed ^ 0xF16);

  const core::DataProcessor processor;
  const auto processed = processor.process(stream.trace);

  common::print_banner(std::cout, "Fig. 5(a) — original RSS statistics");
  const auto sum = stream.trace.summed();
  std::cout << "  summed RSS: mean " << common::Table::num(common::mean(sum))
            << " counts, sd " << common::Table::num(common::stddev(sum))
            << " (static offsets + ambient drift dominate)\n";

  common::print_banner(std::cout, "Fig. 5(b) — ΔRSS² after SBC + DT");
  std::cout << "  ΔRSS² idle median "
            << common::Table::num(common::median(processed.energy))
            << "; detected " << processed.segments.size()
            << " gestures (ground truth: " << stream.gesture_bounds.size()
            << ")\n  segments:";
  for (const auto& seg : processed.segments)
    std::cout << " [" << seg.begin << "," << seg.end << ")";
  std::cout << "\n  ground truth:";
  for (const auto& [b, e] : stream.gesture_bounds)
    std::cout << " [" << b << "," << e << ")";
  const double iou = segmentation_iou(processed.segments,
                                      stream.gesture_bounds);
  std::cout << "\n  mean best-overlap IoU vs truth: "
            << common::Table::pct(iou) << "\n";

  // Ablation: fixed threshold vs the dynamic (Otsu) threshold, across a
  // range of fixed levels — no single fixed level works across scenes,
  // which is the paper's motivation for DT.
  common::print_banner(std::cout,
                       "Ablation — fixed threshold vs dynamic threshold");
  common::Table table({"threshold", "segments", "IoU"});
  for (double fixed : {5.0, 20.0, 100.0, 500.0, 2000.0, 10000.0}) {
    std::vector<dsp::Segment> segs;
    bool inside = false;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < processed.energy.size(); ++i) {
      const bool above = processed.energy[i] > fixed;
      if (above && !inside) {
        inside = true;
        begin = i;
      } else if (!above && inside) {
        inside = false;
        if (i - begin >= 12) segs.push_back({begin, i});
      }
    }
    table.add_row({"fixed " + common::Table::num(fixed, 0),
                   std::to_string(segs.size()),
                   common::Table::pct(
                       segmentation_iou(segs, stream.gesture_bounds))});
  }
  table.add_row({"dynamic (DT)", std::to_string(processed.segments.size()),
                 common::Table::pct(iou)});
  table.print(std::cout);

  common::CsvWriter csv("fig05_stream.csv",
                        {"sample", "rss_sum", "delta_rss2", "in_segment"});
  for (std::size_t i = 0; i < sum.size(); ++i) {
    int inside = 0;
    for (const auto& seg : processed.segments)
      if (i >= seg.begin && i < seg.end) inside = 1;
    csv.write_row({std::to_string(i), common::Table::num(sum[i], 1),
                   common::Table::num(processed.energy[i], 1),
                   std::to_string(inside)});
  }
  std::cout << "\nWrote the stream series to fig05_stream.csv.\n";
  return 0;
}
