// Fig. 7 — signals of track-aimed gestures: the per-photodiode ΔRSS² of a
// scroll up and a scroll down, showing the ordered signal arrival that
// ZEBRA reads (P1 before P3 for up, P3 before P1 for down).
#include <iostream>

#include "common/csv.hpp"
#include "core/ascending.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

void report(const synth::GestureSample& s) {
  const core::DataProcessor processor;
  const auto p = processor.process(s.trace);
  const double rate = s.trace.sample_rate_hz();
  const auto g0 = static_cast<std::size_t>(s.gesture_start_s * rate);
  const auto g1 = static_cast<std::size_t>(s.gesture_end_s * rate);
  const auto seg = core::DataProcessor::select_segment(p, g0, g1);
  const auto padded = core::pad_segment(seg, p.energy.size(), 0.25, rate);

  std::vector<std::span<const double>> windows;
  for (const auto& ch : p.delta_rss2)
    windows.emplace_back(ch.data() + padded.begin, padded.length());
  const auto timing = core::segment_timing(windows, rate);

  common::print_banner(std::cout,
                       std::string("Fig. 7 — ") +
                           std::string(synth::motion_name(s.kind)));
  common::Table table({"channel", "peak ΔRSS²", "τ (energy centroid, s)"});
  const char* names[] = {"P1", "P2", "P3"};
  for (std::size_t c = 0; c < windows.size(); ++c) {
    double peak = 0.0;
    for (double v : windows[c]) peak = std::max(peak, v);
    table.add_row({names[c], common::Table::num(peak, 0),
                   common::Table::num(timing.tau_s[c], 3)});
  }
  table.print(std::cout);
  std::cout << "  asymmetry sweep ΔA = "
            << common::Table::num(timing.asymmetry_delta)
            << "  (positive = P1 side first = scroll up)\n"
            << "  transit time Δt = "
            << common::Table::num(timing.transition_s * 1000.0, 0)
            << " ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig07_track_signals",
      "Fig. 7: per-photodiode signals of the track-aimed gestures");
  if (!args) return 0;

  synth::CollectionConfig config = bench::protocol(*args);
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.partial_scroll_probability = 0.0;
  config.kinds = {synth::MotionKind::kScrollUp,
                  synth::MotionKind::kScrollDown};
  const auto data = synth::DatasetBuilder(config).collect();

  common::CsvWriter csv("fig07_track_signals.csv",
                        {"gesture", "sample", "p1", "p2", "p3"});
  for (const auto& s : data.samples) {
    report(s);
    const core::DataProcessor processor;
    const auto p = processor.process(s.trace);
    for (std::size_t i = 0; i < p.energy.size(); ++i)
      csv.write_row({std::string(synth::motion_name(s.kind)),
                     std::to_string(i),
                     common::Table::num(p.delta_rss2[0][i], 1),
                     common::Table::num(p.delta_rss2[1][i], 1),
                     common::Table::num(p.delta_rss2[2][i], 1)});
  }
  std::cout << "\nWrote per-channel ΔRSS² series to "
               "fig07_track_signals.csv.\nPaper check: scroll up shows P1's "
               "energy arriving before P3's (ΔA > 0); scroll down the "
               "reverse.\n";
  return 0;
}
