// bench_inference — the tracked inference hot-path baseline.
//
// Measures the steady-state serving cost of the streaming path on top of a
// frozen ModelBundle: frames/sec and p50/p99 per-frame latency of
// Session::push_frame on one gesture-dense stream, plus aggregate
// frames/sec of a MultiSessionHost at several pool widths. A counting
// allocator hook (global operator new/delete overridden in this TU)
// reports heap allocations per frame for the steady-state window — the
// zero-allocation invariant of DESIGN.md §11 is checked here, not assumed.
//
// The JSON report (BENCH_inference.json via tools/run_bench.sh) is the
// perf trajectory the ROADMAP tracks; --baseline-fps embeds the frames/sec
// of the path being compared against (e.g. the pre-compiled-forest path)
// so the speedup is recorded alongside the absolute numbers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <new>
#include <utility>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/multi_session_host.hpp"
#include "core/session.hpp"
#include "obs/exposition.hpp"
#include "support.hpp"

// ------------------------------------------------------------ alloc hook
// Counts every heap allocation made by this process. Only the deltas taken
// around the measured region matter, so the bench's own setup allocations
// do not pollute the per-frame numbers.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace airfinger;

/// One pipeline stage's latency summary from the session's observability
/// histograms (obs/pipeline.hpp), measured over the same steady-state
/// window as the frame timings.
struct StageReport {
  std::string name;
  std::uint64_t count = 0;
  double sum_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

struct SingleSessionReport {
  double frames_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double allocs_per_frame = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t events = 0;
  bool spans_enabled = false;
  std::vector<StageReport> stages;
};

/// Streams `passes` full replays of the trace through one Session, frame by
/// frame, timing each push. The session is NOT reset between passes: this
/// is the steady-state serving shape (history compaction, calibrated
/// segmenter, warm buffers). `latencies_us` must be preallocated by the
/// caller so recording does not allocate inside the measured window.
SingleSessionReport measure_single_session(
    const std::shared_ptr<const core::ModelBundle>& bundle,
    const sensor::MultiChannelTrace& trace, int passes,
    std::vector<double>& latencies_us) {
  core::Session session(bundle);
  std::uint64_t events = 0;
  const auto sink = [&events](const core::GestureEvent&) { ++events; };
  std::vector<double> frame(trace.channel_count());
  const std::size_t samples = trace.sample_count();

  // Warmup: grows the per-session buffers to their high-water marks and
  // calibrates the segmenter. Two passes, because the segmenter keeps
  // adapting through the first replay, so segment boundaries (and with
  // them scratch sizes) only reach their fixed point on the second.
  // Excluded from every reported number.
  for (int warm = 0; warm < 2; ++warm) {
    for (std::size_t i = 0; i < samples; ++i) {
      for (std::size_t c = 0; c < frame.size(); ++c)
        frame[c] = trace.channel(c)[i];
      session.push_frame(frame, sink);
    }
  }

  // Stage histograms should cover exactly the measured window, not warmup.
  session.observability().reset_values();

  latencies_us.clear();
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto wall_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t i = 0; i < samples; ++i) {
      for (std::size_t c = 0; c < frame.size(); ++c)
        frame[c] = trace.channel(c)[i];
      const auto t0 = std::chrono::steady_clock::now();
      session.push_frame(frame, sink);
      const auto t1 = std::chrono::steady_clock::now();
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  SingleSessionReport report;
  report.frames = static_cast<std::uint64_t>(passes) * samples;
  report.events = events;
  report.frames_per_sec = static_cast<double>(report.frames) / wall_s;
  report.allocs_per_frame =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(report.frames);
  const auto nth = [&](double q) {
    const auto k = static_cast<std::size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    std::nth_element(latencies_us.begin(),
                     latencies_us.begin() + static_cast<long>(k),
                     latencies_us.end());
    return latencies_us[k];
  };
  report.p99_us = nth(0.99);
  report.p50_us = nth(0.50);

  // Per-stage breakdown from the session's latency histograms. Empty
  // stages (never hit in this stream) are omitted; with spans compiled
  // out every stage is empty and the report records that explicitly.
  report.spans_enabled = session.observability().spans_enabled();
  const obs::MetricsSnapshot snapshot =
      session.observability().registry().snapshot();
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    const char* name = obs::stage_name(static_cast<obs::Stage>(s));
    const obs::MetricEntry* e =
        snapshot.find(std::string("af_stage_") + name + "_ns");
    if (!e || e->count == 0) continue;
    StageReport stage;
    stage.name = name;
    stage.count = e->count;
    stage.sum_ns = e->value;
    stage.p50_ns = obs::histogram_quantile(*e, 0.50);
    stage.p99_ns = obs::histogram_quantile(*e, 0.99);
    stage.p999_ns = obs::histogram_quantile(*e, 0.999);
    report.stages.push_back(std::move(stage));
  }
  return report;
}

/// One shard's utilization during a big-sweep point (host shard telemetry,
/// DESIGN.md §18): where the wall-clock actually went, so a throughput
/// regression across shard counts is attributable from the report alone.
struct ShardUtil {
  std::size_t shard = 0;
  double busy_fraction = 0.0;
  std::uint64_t frames_drained = 0;
  double drain_batch_p50 = 0.0;
  double queue_wait_p50_ns = 0.0;
  std::size_t occupancy_high_water = 0;
};

/// One point of the 10k-scale host sweep, carrying the host shape it ran
/// under so the report stays interpretable without cross-referencing code.
struct BigSweepPoint {
  std::size_t shards = 0;
  std::size_t ring_frames = 0;
  const char* admission = "block";
  double frames_per_sec = 0.0;
  std::vector<ShardUtil> shard_util;
};

/// Pulls {stage name -> p50_ns} out of a previously written report, so a
/// run can record its per-stage speedup against a reference build (e.g.
/// the -DAF_SIMD=OFF tree tools/run_bench.sh prepares). The stages array
/// is emitted by this bench on a known single-line shape; scanning for
/// the "name"/"p50_ns" pairs is enough.
std::vector<std::pair<std::string, double>> parse_ref_stage_p50s(
    const std::string& path) {
  std::vector<std::pair<std::string, double>> out;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_inference: cannot read --ref-report " << path
              << ", skipping stage speedups\n";
    return out;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::size_t stages = text.find("\"stages\": [");
  if (stages == std::string::npos) return out;
  const std::size_t end = text.find(']', stages);
  std::size_t pos = stages;
  while (true) {
    const std::size_t name_at = text.find("{\"name\": \"", pos);
    if (name_at == std::string::npos || name_at > end) break;
    const std::size_t name_begin = name_at + 10;
    const std::size_t name_end = text.find('"', name_begin);
    const std::size_t p50_at = text.find("\"p50_ns\": ", name_end);
    if (name_end == std::string::npos || p50_at == std::string::npos ||
        p50_at > end)
      break;
    out.emplace_back(text.substr(name_begin, name_end - name_begin),
                     std::strtod(text.c_str() + p50_at + 10, nullptr));
    pos = p50_at;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("bench_inference",
                  "steady-state inference hot-path baseline");
  cli.add_flag("passes", "4", "timed full-trace replays per measurement");
  cli.add_flag("streams", "16", "concurrent sessions in the host sweep");
  cli.add_flag("turn", "64", "frames fanned to each stream per host turn");
  cli.add_flag("big-streams", "0",
               "sessions in the 10k-scale host sweep (0 = skip it)");
  cli.add_flag("big-frames", "512", "frames fed per big-sweep session");
  cli.add_flag("baseline-fps", "0",
               "single-thread frames/sec of the path being compared "
               "against (0 = no comparison recorded)");
  cli.add_flag("ref-report", "",
               "previously written report to compute per-stage p50 "
               "speedups against (empty = none recorded)");
  cli.add_flag("probe-ref-report", "",
               "report from an AF_PROBE_INCREMENTAL=0 run of this build; "
               "records probe_speedup_vs_ref (batch probe p50 / this "
               "run's incremental probe p50; empty = none recorded)");
  cli.add_flag("out", "BENCH_inference.json", "JSON report path");
  const auto args = bench::parse_args(
      argc, argv, "bench_inference",
      "steady-state inference hot-path baseline", &cli);
  if (!args) return 0;

  const auto passes = static_cast<int>(cli.get_int("passes"));
  const auto streams = static_cast<std::size_t>(cli.get_int("streams"));
  const auto turn = static_cast<std::size_t>(cli.get_int("turn"));
  const auto big_streams =
      static_cast<std::size_t>(cli.get_int("big-streams"));
  const auto big_frames =
      static_cast<std::size_t>(cli.get_int("big-frames"));
  const double baseline_fps = cli.get_double("baseline-fps");
  const std::string ref_report = cli.get("ref-report");
  const std::string probe_ref_report = cli.get("probe-ref-report");

  std::cout << "simd tier: " << simd::tier_name(simd::active_tier())
            << " (detected " << simd::tier_name(simd::detected_tier())
            << ")\n";
  std::cout << "training the shared bundle...\n";
  const auto bundle = bench::train_bundle(*args);

  // One gesture-dense stream: the hot path includes open-segment probing
  // and per-segment classification, not just idle-frame bookkeeping.
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,     synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp,   synth::MotionKind::kRub,
      synth::MotionKind::kScrollDown, synth::MotionKind::kDoubleClick,
  };
  synth::CollectionConfig stream_config;
  stream_config.users = 1;
  stream_config.seed = args->seed ^ 0x1FE6;
  const auto stream =
      synth::make_gesture_stream(stream_config, mix, stream_config.seed);

  std::cout << "single-session steady state (" << passes << " passes over "
            << stream.trace.sample_count() << " frames)...\n";
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(passes) *
                       stream.trace.sample_count());
  const SingleSessionReport single = [&] {
    common::ScopedThreads scoped(1);
    return measure_single_session(bundle, stream.trace, passes,
                                  latencies_us);
  }();
  std::cout << "  " << single.frames_per_sec << " frames/s, p50 "
            << single.p50_us << " us, p99 " << single.p99_us << " us, "
            << single.allocs_per_frame << " allocs/frame ("
            << single.events << " events)\n";
  if (single.spans_enabled)
    for (const auto& s : single.stages)
      std::cout << "    stage " << s.name << ": " << s.count << " spans, p50 "
                << s.p50_ns << " ns, p99 " << s.p99_ns << " ns\n";

  // Host sweep: aggregate frame throughput of N sessions over the shared
  // bundle at several pool widths.
  std::vector<sensor::MultiChannelTrace> traces;
  std::uint64_t host_frames = 0;
  for (std::size_t s = 0; s < streams; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = args->seed ^ (0x57AE0 + s);
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
    host_frames += traces.back().sample_count();
  }
  std::vector<std::size_t> counts{1, 2};
  const std::size_t native = common::resolve_thread_count();
  counts.push_back(native > 4 ? native : 4);
  std::vector<double> host_fps;
  for (std::size_t threads : counts) {
    common::ScopedThreads scoped(threads);
    double best = 1e100;
    for (int r = 0; r < 2; ++r) {
      core::MultiSessionHost host(bundle, traces.size());
      const auto start = std::chrono::steady_clock::now();
      // Parallel per-shard feeders: the sweep measures the host, not a
      // single-threaded producer (events stay bit-identical).
      const auto events = host.run_round_robin_parallel(traces, turn);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      static_cast<void>(events);
      best = std::min(best, wall);
    }
    host_fps.push_back(static_cast<double>(host_frames) / best);
    std::cout << "  host x" << streams << " @ " << threads
              << " threads: " << host_fps.back() << " frames/s\n";
  }

  // 10k-scale sweep (opt-in: --big-streams 10000): lanes reuse a small
  // pool of distinct traces and each receives a bounded slice, fed in
  // interleaved bursts while the shard workers classify concurrently.
  std::vector<BigSweepPoint> big_sweep;
  if (big_streams > 0) {
    constexpr std::size_t kBigPool = 32;
    std::vector<sensor::MultiChannelTrace> big_traces;
    for (std::size_t s = 0; s < kBigPool; ++s) {
      synth::CollectionConfig config;
      config.users = 1;
      config.seed = args->seed ^ (0xB16000 + s);
      big_traces.push_back(
          synth::make_gesture_stream(config, mix, config.seed).trace);
    }
    for (std::size_t shards : counts) {
      core::HostConfig host_config;
      host_config.shards = shards;
      core::MultiSessionHost host(bundle, big_streams,
                                  bundle->config().fault_policy,
                                  host_config);
      const auto start = std::chrono::steady_clock::now();
      constexpr std::size_t kBurst = 64;
      bench::feed_pooled(host, big_traces, big_streams, big_frames,
                         kBurst);
      host.finish();
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      BigSweepPoint point;
      point.shards = shards;
      point.ring_frames = host_config.ring_frames;
      point.admission = host_config.admission == core::Admission::kBlock
                            ? "block"
                            : "reject";
      point.frames_per_sec =
          static_cast<double>(host.frames_processed()) / wall;
      for (std::size_t s = 0; s < host.shard_count(); ++s) {
        const core::ShardTelemetry t = host.shard_telemetry(s);
        ShardUtil util;
        util.shard = s;
        util.busy_fraction = t.busy_fraction();
        util.frames_drained = t.frames_drained;
        util.drain_batch_p50 = t.drain_batch_p50;
        util.queue_wait_p50_ns = t.queue_wait_p50_ns;
        util.occupancy_high_water = t.occupancy_high_water;
        point.shard_util.push_back(util);
      }
      big_sweep.push_back(point);
      std::cout << "  host x" << big_streams << " @ " << shards
                << " shard(s), ring " << point.ring_frames << ", admission "
                << point.admission << ": " << point.frames_per_sec
                << " frames/s\n";
      for (const ShardUtil& u : big_sweep.back().shard_util)
        std::cout << "    shard " << u.shard << ": busy "
                  << 100.0 * u.busy_fraction << "%, " << u.frames_drained
                  << " frames, batch p50 " << u.drain_batch_p50
                  << ", queue wait p50 " << u.queue_wait_p50_ns
                  << " ns, occupancy hw " << u.occupancy_high_water << "\n";
    }
  }

  const double speedup =
      baseline_fps > 0.0 ? single.frames_per_sec / baseline_fps : 0.0;
  const std::vector<std::pair<std::string, double>> ref_stages =
      ref_report.empty() ? std::vector<std::pair<std::string, double>>{}
                         : parse_ref_stage_p50s(ref_report);
  // The incremental-probe win: probe-stage p50 of a batch-probe run of
  // this same build (AF_PROBE_INCREMENTAL=0) over this run's p50.
  double probe_ref_p50 = 0.0, probe_p50 = 0.0;
  if (!probe_ref_report.empty()) {
    for (const auto& [name, p50] : parse_ref_stage_p50s(probe_ref_report))
      if (name == std::string("probe")) probe_ref_p50 = p50;
    for (const auto& s : single.stages)
      if (s.name == std::string("probe")) probe_p50 = s.p50_ns;
  }
  const auto emit = [&](std::ostream& os) {
    os << "{\n";
    os << "  \"simd_tier\": \"" << simd::tier_name(simd::active_tier())
       << "\",\n";
    os << "  \"frames_per_sec\": " << single.frames_per_sec << ",\n";
    os << "  \"p50_us\": " << single.p50_us << ",\n";
    os << "  \"p99_us\": " << single.p99_us << ",\n";
    os << "  \"allocs_per_frame\": " << single.allocs_per_frame << ",\n";
    os << "  \"threads\": 1,\n";
    os << "  \"frames_measured\": " << single.frames << ",\n";
    os << "  \"events\": " << single.events << ",\n";
    if (baseline_fps > 0.0) {
      os << "  \"baseline_frames_per_sec\": " << baseline_fps << ",\n";
      os << "  \"speedup_vs_baseline\": " << speedup << ",\n";
    }
    os << "  \"spans_enabled\": " << (single.spans_enabled ? "true" : "false")
       << ",\n";
    os << "  \"stages\": [";
    for (std::size_t i = 0; i < single.stages.size(); ++i) {
      const auto& s = single.stages[i];
      os << (i ? ", " : "") << "{\"name\": \"" << s.name
         << "\", \"count\": " << s.count << ", \"sum_ns\": " << s.sum_ns
         << ", \"p50_ns\": " << s.p50_ns << ", \"p99_ns\": " << s.p99_ns
         << ", \"p999_ns\": " << s.p999_ns << "}";
    }
    os << "],\n";
    if (!ref_stages.empty()) {
      // Per-stage p50 speedup vs the reference report (typically the
      // -DAF_SIMD=OFF tree): ref_p50 / this run's p50, per shared stage.
      os << "  \"stage_speedup_vs_ref\": [";
      bool first = true;
      for (const auto& s : single.stages) {
        for (const auto& [name, ref_p50] : ref_stages) {
          if (name != s.name || s.p50_ns <= 0.0) continue;
          os << (first ? "" : ", ") << "{\"name\": \"" << s.name
             << "\", \"ref_p50_ns\": " << ref_p50
             << ", \"p50_ns\": " << s.p50_ns
             << ", \"speedup\": " << ref_p50 / s.p50_ns << "}";
          first = false;
        }
      }
      os << "],\n";
    }
    if (probe_ref_p50 > 0.0 && probe_p50 > 0.0) {
      os << "  \"probe_speedup_vs_ref\": {\"ref_p50_ns\": " << probe_ref_p50
         << ", \"p50_ns\": " << probe_p50
         << ", \"speedup\": " << probe_ref_p50 / probe_p50 << "},\n";
    }
    os << "  \"host_scaling\": [";
    for (std::size_t i = 0; i < counts.size(); ++i) {
      os << (i ? ", " : "") << "{\"threads\": " << counts[i]
         << ", \"frames_per_sec\": " << host_fps[i] << "}";
    }
    os << "]";
    if (!big_sweep.empty()) {
      os << ",\n  \"host_scaling_10k\": {\"streams\": " << big_streams
         << ", \"frames_per_stream\": " << big_frames << ", \"sweep\": [";
      for (std::size_t i = 0; i < big_sweep.size(); ++i) {
        const BigSweepPoint& p = big_sweep[i];
        os << (i ? ", " : "") << "{\"shards\": " << p.shards
           << ", \"ring_frames\": " << p.ring_frames << ", \"admission\": \""
           << p.admission << "\", \"frames_per_sec\": " << p.frames_per_sec
           << ", \"shard_util\": [";
        for (std::size_t u = 0; u < p.shard_util.size(); ++u) {
          const ShardUtil& su = p.shard_util[u];
          os << (u ? ", " : "") << "{\"shard\": " << su.shard
             << ", \"busy_fraction\": " << su.busy_fraction
             << ", \"frames_drained\": " << su.frames_drained
             << ", \"drain_batch_p50\": " << su.drain_batch_p50
             << ", \"queue_wait_p50_ns\": " << su.queue_wait_p50_ns
             << ", \"occupancy_high_water\": " << su.occupancy_high_water
             << "}";
        }
        os << "]}";
      }
      os << "]}";
    }
    os << "\n}\n";
  };
  std::ofstream file(cli.get("out"));
  emit(file);
  std::cout << "\ninference report (" << cli.get("out") << "):\n";
  emit(std::cout);
  return 0;
}
