// Fig. 11 — impact of individual diversity: leave-one-user-out evaluation
// of the six detect-aimed gestures.
//
// Paper: training on 9 users, testing on the held-out one, averaged over
// all 10 combinations gives 83.61% — noticeably below the same-user 98.44%
// of Fig. 10, while remaining usable without per-user calibration. The
// reproduction target is exactly that ordering and a comparable gap.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig11_diversity",
      "Fig. 11: leave-one-user-out (individual diversity)");
  if (!args) return 0;

  const auto data = synth::DatasetBuilder(bench::protocol(*args)).collect();
  const auto set = bench::featurize(data, core::LabelScheme::kDetectSix,
                                    core::GroupScheme::kUser);
  const auto splits = ml::leave_one_group_out(set);
  std::cout << "evaluating " << splits.size()
            << " leave-one-user-out combinations...\n";

  ml::ConfusionMatrix total(core::class_count(core::LabelScheme::kDetectSix),
                            core::class_names(core::LabelScheme::kDetectSix));
  common::Table per_user({"held-out user", "accuracy", "recall",
                          "precision"});
  common::CsvWriter csv("fig11_per_user.csv",
                        {"user", "accuracy", "recall", "precision"});
  int user = 0;
  for (const auto& split : splits) {
    core::DetectRecognizer recognizer;
    const auto cm = core::evaluate_split(
        recognizer, set, split,
        core::class_count(core::LabelScheme::kDetectSix));
    per_user.add_row({"user " + std::to_string(user),
                      common::Table::pct(cm.accuracy()),
                      common::Table::pct(cm.macro_recall()),
                      common::Table::pct(cm.macro_precision())});
    csv.write_row({std::to_string(user),
                   common::Table::num(cm.accuracy(), 4),
                   common::Table::num(cm.macro_recall(), 4),
                   common::Table::num(cm.macro_precision(), 4)});
    total.merge(cm);
    ++user;
  }

  bench::print_summary("Fig. 11 — individual diversity (LOUO)", total,
                       0.8361);
  per_user.print(std::cout);
  std::cout << "Paper: 83.61% average; 80% of users above 80% accuracy; "
               "average recall 87.44% / precision 84.69%.\nShape check: "
               "markedly below the Fig. 10 same-user result, yet far above "
               "chance — pre-training without per-user calibration "
               "remains viable.\nWrote fig11_per_user.csv.\n";
  return 0;
}
