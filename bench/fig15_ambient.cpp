// Fig. 15 — impact of environmental NIR changes: gestures performed at
// different times of day (8:00–20:00 every 3 hours).
//
// Paper: 2 volunteers, all gestures × 25 repetitions per time slot; average
// accuracy 92.97% (recall 93.8%, precision 95.02%) — ambient variation
// costs a few points relative to Fig. 10 but the system stays usable.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig15_ambient",
      "Fig. 15: accuracy under environmental NIR changes (time of day)");
  if (!args) return 0;

  // Train on the standard mixed-hour protocol.
  synth::CollectionConfig train_config = bench::protocol(*args);
  train_config.users = 2;
  const auto train_data = synth::DatasetBuilder(train_config).collect();
  const auto train_set =
      bench::featurize(train_data, core::LabelScheme::kAllEight);
  core::DetectRecognizer recognizer;
  recognizer.fit(train_set);

  const std::vector<double> hours{8.0, 11.0, 14.0, 17.0, 20.0};
  common::Table table({"time of day", "accuracy", "samples"});
  common::CsvWriter csv("fig15_ambient.csv",
                        {"hour", "accuracy", "samples"});
  ml::ConfusionMatrix total(8, core::class_names(core::LabelScheme::kAllEight));

  const core::DataProcessor processor;
  const features::FeatureBank bank;
  for (double hour : hours) {
    synth::CollectionConfig test_config = bench::protocol(*args);
    test_config.users = 2;
    test_config.sessions = 1;
    // The paper evaluates the same two volunteers at each hour: keep the
    // training roster (same seed) so only the ambient changes.
    test_config.seed = args->seed;
    test_config.fixed_hour = hour;
    const auto test_data = synth::DatasetBuilder(test_config).collect();
    const auto test_set = core::build_feature_set(
        test_data, processor, bank, core::LabelScheme::kAllEight);

    ml::ConfusionMatrix cm(8);
    for (std::size_t i = 0; i < test_set.size(); ++i)
      cm.add(test_set.labels[i], recognizer.predict(test_set.features[i]));
    for (int t = 0; t < 8; ++t)
      for (int p = 0; p < 8; ++p)
        for (std::size_t k = 0; k < cm.count(t, p); ++k) total.add(t, p);

    table.add_row({common::Table::num(hour, 0) + ":00",
                   common::Table::pct(cm.accuracy()),
                   std::to_string(test_set.size())});
    csv.write_row({common::Table::num(hour, 0),
                   common::Table::num(cm.accuracy(), 4),
                   std::to_string(test_set.size())});
  }

  common::print_banner(std::cout, "Fig. 15 — environmental NIR changes");
  table.print(std::cout);
  bench::print_comparison("average accuracy across hours", 0.9297,
                          total.accuracy());
  std::cout << "Paper: 92.97% average; shape check: accuracy dips around "
               "midday (strongest ambient NIR) and stays usable at every "
               "hour.\nWrote fig15_ambient.csv.\n";
  return 0;
}
