// Fig. 10 — overall performance of the six detect-aimed gestures among 10
// volunteers: 5-fold cross-validation, confusion matrix, per-class
// accuracy/recall/precision.
//
// Paper: average accuracy 98.44%; every gesture's recall and precision
// above 90%.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig10_overall",
      "Fig. 10: overall detect-aimed performance (5-fold CV)");
  if (!args) return 0;

  const auto data = synth::DatasetBuilder(bench::protocol(*args)).collect();
  const auto set = bench::featurize(data, core::LabelScheme::kDetectSix);
  std::cout << "feature set: " << set.size() << " samples × "
            << set.feature_count() << " features\n";

  common::Rng rng(args->seed ^ 0xF01D);
  const auto splits = ml::stratified_kfold(set, 5, rng);
  const auto cm =
      bench::cross_validate(set, splits, core::LabelScheme::kDetectSix);

  bench::print_summary("Fig. 10 — overall detect-aimed performance", cm,
                       0.9844);

  common::Table per_class({"gesture", "accuracy", "recall", "precision"});
  common::CsvWriter csv("fig10_per_class.csv",
                        {"gesture", "accuracy", "recall", "precision"});
  const auto names = core::class_names(core::LabelScheme::kDetectSix);
  for (int c = 0; c < cm.num_classes(); ++c) {
    per_class.add_row({names[static_cast<std::size_t>(c)],
                       common::Table::pct(cm.class_accuracy(c)),
                       common::Table::pct(cm.recall(c)),
                       common::Table::pct(cm.precision(c))});
    csv.write_row({names[static_cast<std::size_t>(c)],
                   common::Table::num(cm.class_accuracy(c), 4),
                   common::Table::num(cm.recall(c), 4),
                   common::Table::num(cm.precision(c), 4)});
  }
  per_class.print(std::cout);
  std::cout << "Paper: lowest recall 90.65%, lowest precision 92.13%.\n"
               "Wrote fig10_per_class.csv.\n";
  return 0;
}
