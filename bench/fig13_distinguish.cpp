// Fig. 13 — performance of distinguishing detect-aimed vs track-aimed
// gestures (the rule-based router of Sec. IV-E), plus the I_g threshold
// ablation called out in DESIGN.md.
//
// Paper: accuracy, recall, and precision all above 98%. Our simulated
// optics separate the two classes less sharply than the authors' hardware
// (see DESIGN.md §5); the hybrid classifier-assisted router recovers most
// of the gap and is reported alongside.
#include <iostream>

#include "common/csv.hpp"
#include "core/trainer.hpp"
#include "core/type_router.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

struct RouterScore {
  ml::ConfusionMatrix cm{2, {"detect-aimed", "track-aimed"}};
};

int truth_label(synth::MotionKind kind) {
  return synth::is_track_aimed(kind) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("bench_fig13_distinguish",
                  "Fig. 13: detect- vs track-aimed gesture distinction");
  const auto args = bench::parse_args(argc, argv, "", "", &cli);
  if (!args) return 0;

  const auto data = synth::DatasetBuilder(bench::protocol(*args)).collect();
  const core::DataProcessor processor;

  // Rule-based router (the paper's algorithm).
  RouterScore rule;
  const core::TypeRouter router;
  std::vector<std::pair<const synth::GestureSample*, dsp::Segment>> windows;
  std::vector<core::ProcessedTrace> processed_store;
  processed_store.reserve(data.size());
  for (const auto& s : data.samples) {
    processed_store.push_back(processor.process(s.trace));
    const auto& p = processed_store.back();
    const double rate = s.trace.sample_rate_hz();
    const auto seg = core::DataProcessor::select_segment(
        p, static_cast<std::size_t>(s.gesture_start_s * rate),
        static_cast<std::size_t>(s.gesture_end_s * rate));
    if (seg.length() < 8) continue;
    const int predicted =
        router.route(p, seg) == core::GestureCategory::kTrackAimed ? 1 : 0;
    rule.cm.add(truth_label(s.kind), predicted);
  }

  bench::print_summary("Fig. 13 — rule-based router (paper's algorithm)",
                       rule.cm, 0.98);
  std::cout << "  detect recall " << common::Table::pct(rule.cm.recall(0))
            << ", track recall " << common::Table::pct(rule.cm.recall(1))
            << "\n";

  // Hybrid router (classifier cross-check) — the engine's default.
  core::TrainerConfig trainer;
  trainer.users = std::max(2, args->users / 2);
  trainer.sessions = 2;
  trainer.repetitions = args->reps;
  trainer.seed = args->seed ^ 0xAB1E;
  core::AirFinger engine = core::build_engine(trainer);
  RouterScore hybrid;
  for (const auto& s : data.samples) {
    const auto v = core::run_sample(engine, s);
    if (!v.detected || v.rejected || !v.predicted) continue;
    hybrid.cm.add(truth_label(s.kind),
                  synth::is_track_aimed(*v.predicted) ? 1 : 0);
  }
  bench::print_summary("Hybrid router (classifier cross-check)", hybrid.cm,
                       0.98);

  // Ablation: sweep the I_g threshold around the paper's 30 ms.
  common::print_banner(std::cout, "Ablation — I_g threshold sweep");
  common::Table table({"I_g (ms)", "accuracy", "detect recall",
                       "track recall"});
  common::CsvWriter csv("fig13_ig_sweep.csv",
                        {"ig_ms", "accuracy", "detect_recall",
                         "track_recall"});
  for (double ig_ms : {10.0, 20.0, 30.0, 50.0, 80.0, 120.0}) {
    core::TypeRouterConfig config;
    config.ig_threshold_s = ig_ms / 1000.0;
    const core::TypeRouter swept(config);
    ml::ConfusionMatrix cm(2);
    std::size_t idx = 0;
    for (const auto& s : data.samples) {
      const auto& p = processed_store[idx++];
      const double rate = s.trace.sample_rate_hz();
      const auto seg = core::DataProcessor::select_segment(
          p, static_cast<std::size_t>(s.gesture_start_s * rate),
          static_cast<std::size_t>(s.gesture_end_s * rate));
      if (seg.length() < 8) continue;
      cm.add(truth_label(s.kind),
             swept.route(p, seg) == core::GestureCategory::kTrackAimed ? 1
                                                                       : 0);
    }
    table.add_row({common::Table::num(ig_ms, 0),
                   common::Table::pct(cm.accuracy()),
                   common::Table::pct(cm.recall(0)),
                   common::Table::pct(cm.recall(1))});
    csv.write_row({common::Table::num(ig_ms, 0),
                   common::Table::num(cm.accuracy(), 4),
                   common::Table::num(cm.recall(0), 4),
                   common::Table::num(cm.recall(1), 4)});
  }
  table.print(std::cout);
  std::cout << "Wrote fig13_ig_sweep.csv.\n";
  return 0;
}
