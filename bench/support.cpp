#include "support.hpp"

#include <algorithm>
#include <iomanip>
#include <optional>
#include <thread>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace airfinger::bench {

std::optional<BenchArgs> parse_args(int argc, const char* const* argv,
                                    const std::string& name,
                                    const std::string& description,
                                    common::Cli* extra) {
  common::Cli own(name, description);
  common::Cli& cli = extra ? *extra : own;
  cli.add_flag("seed", "7", "master random seed");
  cli.add_flag("users", "10", "synthetic volunteers (paper: 10)");
  cli.add_flag("sessions", "5", "sessions per volunteer (paper: 5)");
  cli.add_flag("reps", "8",
               "repetitions per gesture per session (paper: 25)");
  if (!cli.parse(argc, argv)) return std::nullopt;
  BenchArgs args;
  args.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  args.users = static_cast<int>(cli.get_int("users"));
  args.sessions = static_cast<int>(cli.get_int("sessions"));
  args.reps = static_cast<int>(cli.get_int("reps"));
  return args;
}

synth::CollectionConfig protocol(const BenchArgs& args) {
  synth::CollectionConfig config;
  config.users = args.users;
  config.sessions = args.sessions;
  config.repetitions = args.reps;
  config.seed = args.seed;
  return config;
}

std::shared_ptr<const core::ModelBundle> train_bundle(
    const BenchArgs& args, core::TrainingReport* report) {
  core::TrainerConfig config;
  config.seed = args.seed;
  return core::build_bundle(config, report);
}

ml::SampleSet featurize(const synth::Dataset& data,
                        core::LabelScheme scheme,
                        core::GroupScheme groups) {
  const core::DataProcessor processor;
  const features::FeatureBank bank;
  return core::build_feature_set(data, processor, bank, scheme, groups);
}

ml::ConfusionMatrix cross_validate(const ml::SampleSet& set,
                                   const std::vector<ml::Split>& splits,
                                   core::LabelScheme scheme,
                                   bool verbose) {
  ml::ConfusionMatrix total(core::class_count(scheme),
                            core::class_names(scheme));
  // Folds are independent (each trains its own recognizer on the shared
  // read-only set), so they run in parallel; merging and per-fold printing
  // stay in fold order so output and counts are thread-count invariant.
  std::vector<std::optional<ml::ConfusionMatrix>> folds(splits.size());
  common::parallel_for(0, splits.size(), [&](std::size_t f) {
    core::DetectRecognizer recognizer;
    folds[f] = core::evaluate_split(recognizer, set, splits[f],
                                    core::class_count(scheme),
                                    core::class_names(scheme));
  });
  for (std::size_t f = 0; f < folds.size(); ++f) {
    if (verbose)
      std::cout << "  fold " << f + 1 << ": accuracy "
                << common::Table::pct(folds[f]->accuracy()) << "\n";
    total.merge(*folds[f]);
  }
  return total;
}

void print_summary(const std::string& experiment,
                   const ml::ConfusionMatrix& cm, double paper_accuracy) {
  common::print_banner(std::cout, experiment);
  std::cout << cm.to_string();
  common::Table table({"metric", "paper", "measured"});
  table.add_row({"accuracy", common::Table::pct(paper_accuracy),
                 common::Table::pct(cm.accuracy())});
  table.add_row({"macro recall", "-", common::Table::pct(cm.macro_recall())});
  table.add_row(
      {"macro precision", "-", common::Table::pct(cm.macro_precision())});
  table.print(std::cout);
}

void print_comparison(const std::string& metric, double paper,
                      double measured) {
  std::cout << std::fixed << std::setprecision(2) << "  " << metric
            << ": paper " << paper * 100.0 << "%  measured "
            << measured * 100.0 << "%\n";
}

void feed_pooled(core::MultiSessionHost& host,
                 const std::vector<sensor::MultiChannelTrace>& traces,
                 std::size_t sessions, std::size_t frames_per_stream,
                 std::size_t burst) {
  AF_EXPECT(!traces.empty(), "feed_pooled needs at least one trace");
  AF_EXPECT(burst >= 1, "feed_pooled burst must be >= 1");
  const std::size_t channels = traces.front().channel_count();
  const auto feed_lanes = [&](std::size_t first, std::size_t stride) {
    std::vector<double> frame(channels);
    for (std::size_t offset = 0; offset < frames_per_stream;
         offset += burst) {
      for (std::size_t lane = first; lane < sessions; lane += stride) {
        const auto& trace = traces[lane % traces.size()];
        const std::size_t limit = std::min(
            {offset + burst, frames_per_stream, trace.sample_count()});
        for (std::size_t f = offset; f < limit; ++f) {
          for (std::size_t c = 0; c < channels; ++c)
            frame[c] = trace.channel(c)[f];
          host.feed(lane, frame);
        }
      }
    }
  };
  const std::size_t shards = host.shard_count();
  if (shards < 2) {  // inline mode: single feeder only (shared drain scratch)
    feed_lanes(0, 1);
    return;
  }
  std::vector<std::thread> feeders;
  feeders.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    feeders.emplace_back(feed_lanes, s, shards);
  for (auto& t : feeders) t.join();
}

}  // namespace airfinger::bench
