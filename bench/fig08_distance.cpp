// Fig. 8 / Sec. V-D — accuracy of different sensing distances.
//
// The paper sweeps the finger-to-sensor distance from 0.5 cm to 12 cm in
// 0.5 cm steps with 3 volunteers and finds >90% accuracy within 0.5–6 cm.
// Our 10-bit acquisition chain has a smaller optical budget, so the working
// envelope is narrower; the *shape* — a plateau of high accuracy at close
// range followed by decay with distance — is the reproduction target.
#include <iostream>

#include "common/csv.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  common::Cli cli("bench_fig08_distance",
                  "Fig. 8: accuracy vs sensing distance");
  cli.add_flag("step_cm", "1.0", "distance increment (paper: 0.5)");
  cli.add_flag("max_cm", "12.0", "maximum distance (paper: 12)");
  const auto args = bench::parse_args(argc, argv, "", "", &cli);
  if (!args) return 0;

  const double step = cli.get_double("step_cm");
  const double max_cm = cli.get_double("max_cm");

  // Train across a spread of distances (the paper's volunteers performed
  // at whatever standoff they liked within the working range), then test
  // at each distance.
  synth::Dataset train_data;
  for (double train_cm : {1.5, 2.5, 3.5, 5.0}) {
    synth::CollectionConfig train_config = bench::protocol(*args);
    train_config.users = 3;  // the paper uses 3 volunteers here
    train_config.sessions = 2;
    train_config.standoff_override_m = train_cm / 100.0;
    train_config.seed =
        args->seed ^ static_cast<std::uint64_t>(train_cm * 10);
    const auto part = synth::DatasetBuilder(train_config).collect();
    train_data.samples.insert(train_data.samples.end(),
                              part.samples.begin(), part.samples.end());
  }
  const auto train_set =
      bench::featurize(train_data, core::LabelScheme::kAllEight);
  core::DetectRecognizer recognizer;
  recognizer.fit(train_set);

  common::print_banner(std::cout, "Fig. 8 — accuracy vs sensing distance");
  common::Table table({"distance (cm)", "accuracy", "samples"});
  common::CsvWriter csv("fig08_distance.csv",
                        {"distance_cm", "accuracy", "samples"});
  const core::DataProcessor processor;
  const features::FeatureBank bank;

  for (double cm = 0.5; cm <= max_cm + 1e-9; cm += step) {
    synth::CollectionConfig test_config = bench::protocol(*args);
    test_config.users = 3;
    test_config.sessions = 1;
    test_config.repetitions = std::max(2, args->reps / 2);
    test_config.seed = args->seed ^ 0xD157 ^
                       static_cast<std::uint64_t>(cm * 100);
    test_config.standoff_override_m = cm / 100.0;
    const auto test_data = synth::DatasetBuilder(test_config).collect();
    const auto test_set = core::build_feature_set(
        test_data, processor, bank, core::LabelScheme::kAllEight);

    int correct = 0;
    for (std::size_t i = 0; i < test_set.size(); ++i)
      if (recognizer.predict(test_set.features[i]) == test_set.labels[i])
        ++correct;
    // Samples whose segment could not even be extracted count as errors:
    // total = all recorded samples.
    const double accuracy =
        test_data.size() > 0
            ? static_cast<double>(correct) /
                  static_cast<double>(test_data.size())
            : 0.0;
    table.add_row({common::Table::num(cm, 1), common::Table::pct(accuracy),
                   std::to_string(test_data.size())});
    csv.write_row({common::Table::num(cm, 1),
                   common::Table::num(accuracy, 4),
                   std::to_string(test_data.size())});
  }
  table.print(std::cout);
  std::cout << "\nPaper: accuracy above 90% within 0.5–6 cm, degrading "
               "beyond. Our optical budget is smaller (10-bit ADC, "
               "auto-gain), so expect the same plateau-then-decay shape "
               "with an earlier knee.\nWrote fig08_distance.csv.\n";
  return 0;
}
