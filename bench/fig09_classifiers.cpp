// Fig. 9 — accuracy comparison between four classifiers (RF, LR, DT, BNB)
// with different percentages of testing data.
//
// Paper findings to reproduce in shape: all classifiers degrade slightly as
// the testing share grows; RF is consistently best (peaking near 25% test
// data); LR is competitive but slower; DT and BNB trail.
#include <chrono>
#include <iostream>
#include <memory>

#include "common/csv.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/dtw.hpp"
#include "ml/cnn.hpp"
#include "ml/hmm.hpp"
#include "ml/random_forest.hpp"
#include "support.hpp"

using namespace airfinger;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(
      argc, argv, "bench_fig09_classifiers",
      "Fig. 9: RF vs LR vs DT vs BNB over the testing-data share");
  if (!args) return 0;

  const auto data = synth::DatasetBuilder(bench::protocol(*args)).collect();
  const auto set = bench::featurize(data, core::LabelScheme::kAllEight);
  std::cout << "feature set: " << set.size() << " samples × "
            << set.feature_count() << " features\n";

  const std::vector<double> test_fractions{0.15, 0.25, 0.35, 0.50};

  common::Table table({"classifier", "15% test", "25% test", "35% test",
                       "50% test", "fit+predict (s)"});
  common::CsvWriter csv("fig09_classifiers.csv",
                        {"classifier", "test_fraction", "accuracy"});

  auto make = [](const std::string& which) -> std::unique_ptr<ml::Classifier> {
    if (which == "RF") return std::make_unique<ml::RandomForest>();
    if (which == "LR") return std::make_unique<ml::LogisticRegression>();
    if (which == "DT") return std::make_unique<ml::DecisionTree>();
    return std::make_unique<ml::BernoulliNaiveBayes>();
  };

  double best_rf_at_25 = 0.0;
  for (const std::string name : {"RF", "LR", "DT", "BNB"}) {
    std::vector<std::string> row{name};
    double seconds = 0.0;
    for (double fraction : test_fractions) {
      common::Rng rng(args->seed ^ 0xC1A);
      const auto split = ml::stratified_split(set, fraction, rng);
      const auto clf = make(name);
      const auto t0 = std::chrono::steady_clock::now();
      const auto cm = core::evaluate_split(*clf, set, split, 8);
      seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      row.push_back(common::Table::pct(cm.accuracy()));
      csv.write_row({name, common::Table::num(fraction, 2),
                     common::Table::num(cm.accuracy(), 4)});
      if (name == "RF" && fraction == 0.25) best_rf_at_25 = cm.accuracy();
    }
    row.push_back(common::Table::num(seconds, 2));
    table.add_row(std::move(row));
  }

  common::print_banner(std::cout, "Fig. 9 — classifier comparison");
  table.print(std::cout);

  // Extension: the sequence baseline the paper rules out on cost grounds
  // (Sec. IV-C-2) — DTW 1-NN on the raw segmented series at 25% test data.
  {
    const core::DataProcessor processor;
    const auto series = core::build_series_set(
        data, processor, core::LabelScheme::kAllEight);
    ml::SampleSet index_only;  // reuse the stratified splitter
    index_only.features.assign(series.series.size(), {0.0});
    index_only.labels = series.labels;
    common::Rng rng(args->seed ^ 0xD7A);
    const auto split = ml::stratified_split(index_only, 0.25, rng);
    std::vector<std::vector<double>> train_series;
    std::vector<int> train_labels;
    for (std::size_t i : split.train) {
      train_series.push_back(series.series[i]);
      train_labels.push_back(series.labels[i]);
    }
    auto evaluate_sequence_baseline = [&](const char* name, auto& model) {
      const auto t0 = std::chrono::steady_clock::now();
      model.fit(train_series, train_labels);
      int correct = 0;
      for (std::size_t i : split.test)
        if (model.predict(series.series[i]) == series.labels[i]) ++correct;
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      std::cout << "  " << name << ": accuracy "
                << common::Table::pct(
                       static_cast<double>(correct) /
                       static_cast<double>(split.test.size()))
                << ", fit+predict " << common::Table::num(seconds, 2)
                << " s\n";
    };
    ml::DtwClassifier dtw;
    evaluate_sequence_baseline("DTW 1-NN (sequence baseline)", dtw);
    ml::HmmClassifier hmm;
    evaluate_sequence_baseline("HMM per-class (sequence baseline)", hmm);
    ml::CnnClassifier cnn;
    evaluate_sequence_baseline("1-D CNN (sequence baseline)", cnn);
    std::cout << "  DTW's per-query cost scales with the training set; HMM "
                 "and CNN training are iterative —\n  the paper's reason "
                 "for preferring RF on a wearable (Sec. IV-C-2).\n";
  }
  bench::print_comparison("RF accuracy at 25% test data (paper best)",
                          0.985, best_rf_at_25);
  std::cout << "Shape check: RF highest throughout; accuracies drift down "
               "as the test share grows.\nWrote fig09_classifiers.csv.\n";
  return 0;
}
