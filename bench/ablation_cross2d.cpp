// Ablation — 2-D sensing area (the paper's Sec. VI extension): swipes at
// eight compass directions over the cross board, tracked by ZEBRA-2D.
// Reports the direction-8 confusion matrix and the mean angular error.
#include <cmath>
#include <iostream>
#include <numbers>

#include "common/csv.hpp"
#include "core/zebra2d.hpp"
#include "sensor/recorder.hpp"
#include "support.hpp"
#include "synth/trajectory.hpp"

using namespace airfinger;

namespace {

constexpr double kPi = std::numbers::pi;

core::ProcessedTrace record_swipe(double angle_rad, double standoff,
                                  double speed, common::Rng& rng) {
  optics::AmbientConditions ambient;
  ambient.hour_of_day = 11.0;
  const auto scene =
      optics::make_cross_scene({}, optics::AmbientModel(ambient));
  sensor::AdcSpec adc;
  adc.gain = 90.0;
  sensor::Recorder recorder(scene, sensor::AdcModel(adc), 100.0);

  const optics::Vec3 dir{std::cos(angle_rad), std::sin(angle_rad), 0.0};
  const double sweep_T = 0.6 / speed;
  const double total_T = sweep_T + 0.8;
  auto provider = [=](double t) {
    sensor::SceneState state;
    optics::ReflectorPatch finger;
    const double raw = std::clamp((t - 0.4) / sweep_T, 0.0, 1.0);
    const double s = synth::minimum_jerk(raw);
    finger.position = dir * (-0.025 + 0.05 * s);
    finger.position.z = standoff;
    const double entry = std::max(0.0, 1.0 - raw / 0.2);
    const double exit = std::max(0.0, (raw - 0.8) / 0.2);
    finger.position.z += 0.025 * (entry * entry + exit * exit);
    state.patches.push_back(finger);
    return state;
  };
  const auto trace = recorder.record(provider, total_T, rng);
  return core::DataProcessor{}.process(trace);
}

const char* direction_name(core::SwipeDirection8 d) {
  static const char* names[] = {"E", "NE", "N", "NW", "W", "SW", "S", "SE"};
  return names[static_cast<std::size_t>(d)];
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("bench_ablation_cross2d",
                  "Sec. VI extension: 2-D swipe tracking on a cross board");
  cli.add_flag("seed", "7", "random seed");
  cli.add_flag("trials", "12", "swipes per direction");
  if (!cli.parse(argc, argv)) return 0;
  common::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const int trials = static_cast<int>(cli.get_int("trials"));

  const core::Zebra2dTracker tracker;
  ml::ConfusionMatrix cm(8, {"E", "NE", "N", "NW", "W", "SW", "S", "SE"});
  double angle_error_sum = 0.0;
  int tracked = 0, total = 0;

  common::CsvWriter csv("ablation_cross2d.csv",
                        {"true_angle_deg", "measured_angle_deg",
                         "true_dir", "measured_dir"});
  for (int d = 0; d < 8; ++d) {
    const double base_angle = d * kPi / 4.0;
    for (int trial = 0; trial < trials; ++trial) {
      ++total;
      const double angle = base_angle + rng.uniform(-0.12, 0.12);
      const double standoff = rng.uniform(0.014, 0.022);
      const double speed = rng.uniform(0.8, 1.3);
      const auto p = record_swipe(angle, standoff, speed, rng);
      const auto swipe = tracker.track(p, {0, p.energy.size()});
      if (!swipe) continue;
      ++tracked;
      const auto truth = core::to_direction8(base_angle);
      const auto measured = core::to_direction8(swipe->angle_rad);
      cm.add(static_cast<int>(truth), static_cast<int>(measured));
      double err = std::fabs(swipe->angle_rad - angle);
      while (err > kPi) err = std::fabs(err - 2.0 * kPi);
      angle_error_sum += err;
      csv.write_row({common::Table::num(angle * 180.0 / kPi, 1),
                     common::Table::num(swipe->angle_rad * 180.0 / kPi, 1),
                     direction_name(truth), direction_name(measured)});
    }
  }

  common::print_banner(std::cout,
                       "Sec. VI extension — 2-D swipes on the cross board");
  std::cout << cm.to_string();
  std::cout << "  tracked " << tracked << "/" << total
            << " swipes; direction-8 accuracy "
            << common::Table::pct(cm.accuracy()) << "; mean angular error "
            << common::Table::num(
                   tracked ? angle_error_sum / tracked * 180.0 / kPi : 0.0,
                   1)
            << "°\n"
            << "The same integral-timing machinery that drives the paper's "
               "1-D ZEBRA extends to two axes\nwith no new signal "
               "processing — the multi-dimensional sensing area the paper "
               "envisions.\nWrote ablation_cross2d.csv.\n";
  return 0;
}
