// bench_host_scaling — multi-session serving throughput vs. thread count.
//
// Measures the production-serving shape introduced by the bundle/session
// split: one immutable ModelBundle, N concurrent streams driven by a
// MultiSessionHost over the shared thread pool. For each pool width the
// bench replays the same round-robin workload and reports sessions/sec
// (full streams retired per wall-clock second) and mean per-frame latency,
// to stdout and to a JSON file for tracking. The event streams are also
// cross-checked for bit identity across thread counts — any divergence is
// a determinism regression and fails the bench.
#include <chrono>
#include <fstream>
#include <iostream>

#include "common/parallel.hpp"
#include "core/multi_session_host.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

double run_once(const std::shared_ptr<const core::ModelBundle>& bundle,
                const std::vector<sensor::MultiChannelTrace>& traces,
                std::size_t frames_per_turn,
                std::vector<core::SessionEvent>* events) {
  core::MultiSessionHost host(bundle, traces.size());
  const auto start = std::chrono::steady_clock::now();
  auto out = host.run_round_robin(traces, frames_per_turn);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (events) *events = std::move(out);
  return wall;
}

bool events_equal(const std::vector<core::SessionEvent>& a,
                  const std::vector<core::SessionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].session != b[i].session) return false;
    const auto& x = a[i].event;
    const auto& y = b[i].event;
    if (x.type != y.type || x.time_s != y.time_s ||
        x.gesture != y.gesture || x.segment_begin != y.segment_begin ||
        x.segment_end != y.segment_end ||
        x.scroll.has_value() != y.scroll.has_value())
      return false;
    if (x.scroll && (x.scroll->direction != y.scroll->direction ||
                     x.scroll->velocity_mps != y.scroll->velocity_mps ||
                     x.scroll->duration_s != y.scroll->duration_s))
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("bench_host_scaling",
                  "multi-session serving throughput vs thread count");
  cli.add_flag("streams", "16", "concurrent sessions served by the host");
  cli.add_flag("turn", "64", "frames fanned to each stream per turn");
  cli.add_flag("rounds", "3", "timed repetitions per thread count (best-of)");
  cli.add_flag("out", "bench_host_scaling.json", "JSON report path");
  const auto args = bench::parse_args(
      argc, argv, "bench_host_scaling",
      "multi-session serving throughput vs thread count", &cli);
  if (!args) return 0;

  const auto streams = static_cast<std::size_t>(cli.get_int("streams"));
  const auto turn = static_cast<std::size_t>(cli.get_int("turn"));
  const auto rounds = static_cast<int>(cli.get_int("rounds"));

  std::cout << "training the shared bundle...\n";
  const auto bundle = bench::train_bundle(*args);

  // One gesture-mix trace per stream (distinct users/seeds: the host must
  // not rely on streams being in phase).
  std::cout << "synthesizing " << streams << " stream traces...\n";
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,     synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp,   synth::MotionKind::kRub,
      synth::MotionKind::kScrollDown, synth::MotionKind::kDoubleClick,
  };
  std::vector<sensor::MultiChannelTrace> traces;
  std::uint64_t total_frames = 0;
  for (std::size_t s = 0; s < streams; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = args->seed ^ (0x57AE0 + s);
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
    total_frames += traces.back().sample_count();
  }

  std::vector<std::size_t> counts{1, 2};
  const std::size_t native = common::resolve_thread_count();
  counts.push_back(native > 4 ? native : 4);

  std::vector<double> wall_s(counts.size(), 0.0);
  std::vector<core::SessionEvent> reference;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    common::ScopedThreads scoped(counts[i]);
    double best = 1e100;
    std::vector<core::SessionEvent> events;
    for (int r = 0; r < rounds; ++r)
      best = std::min(best, run_once(bundle, traces, turn, &events));
    wall_s[i] = best;
    if (i == 0) {
      reference = std::move(events);
    } else if (!events_equal(reference, events)) {
      std::cerr << "DETERMINISM VIOLATION: host events differ between "
                << counts[0] << " and " << counts[i] << " threads\n";
      return 1;
    }
    std::cout << "  " << counts[i] << " threads: " << wall_s[i] << " s ("
              << static_cast<double>(streams) / wall_s[i]
              << " sessions/s)\n";
  }

  const double speedup = wall_s.front() / wall_s.back();
  const auto emit = [&](std::ostream& os) {
    os << "{\n  \"hardware_threads\": " << native << ",\n";
    os << "  \"streams\": " << streams << ",\n";
    os << "  \"frames_total\": " << total_frames << ",\n";
    os << "  \"events_total\": " << reference.size() << ",\n";
    os << "  \"threads\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "") << counts[i];
    os << "],\n  \"wall_s\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "") << wall_s[i];
    os << "],\n  \"sessions_per_second\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "")
         << static_cast<double>(streams) / wall_s[i];
    os << "],\n  \"frame_latency_us\": [";
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? ", " : "")
         << wall_s[i] * 1e6 / static_cast<double>(total_frames);
    os << "],\n  \"speedup\": " << speedup
       << ",\n  \"sessions_per_core_per_second\": "
       << static_cast<double>(streams) /
              (wall_s.back() * static_cast<double>(counts.back()))
       << ",\n  \"deterministic_across_threads\": true\n}\n";
  };
  std::ofstream file(cli.get("out"));
  emit(file);
  std::cout << "\nhost-scaling report (" << cli.get("out") << "):\n";
  emit(std::cout);
  return 0;
}
