// bench_host_scaling — sharded serving throughput vs. shard count, at
// interactive scale (16 streams) and serving scale (10k streams).
//
// Measures the production shape behind ROADMAP item 1: one immutable
// ModelBundle, N concurrent streams hashed across S shard worker threads,
// bounded SPSC ingest rings between the producer and the workers. Two
// workloads run per shard count:
//
//   * small: `--streams` full gesture streams via run_round_robin (the
//     latency-ish shape the old bench measured), best-of `--rounds`;
//   * big: `--big-streams` sessions (default 10000) fed `--big-frames`
//     frames each from a pool of distinct synth traces, one timed pass —
//     the 10k-concurrent-stream throughput number.
//
// Event streams are cross-checked for bit identity across every shard
// count (the shardless inline host is the reference); divergence fails
// the bench. Scaling is gated hardware-awareness first: when the machine
// actually has >= 4 hardware threads the 4-shard run must clear
// `--min-speedup` (default 1.6x) over 1 shard and throughput must be
// monotone non-decreasing in shard count (5% tolerance); on narrower
// machines the gate records itself as skipped instead of failing — a
// 1-core container cannot exhibit parallel speedup, and pretending
// otherwise would just train people to ignore the bench.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/multi_session_host.hpp"
#include "support.hpp"

using namespace airfinger;

namespace {

bool events_equal(const std::vector<core::SessionEvent>& a,
                  const std::vector<core::SessionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].session != b[i].session) return false;
    const auto& x = a[i].event;
    const auto& y = b[i].event;
    if (x.type != y.type || x.time_s != y.time_s ||
        x.gesture != y.gesture || x.segment_begin != y.segment_begin ||
        x.segment_end != y.segment_end ||
        x.scroll.has_value() != y.scroll.has_value())
      return false;
    if (x.scroll && (x.scroll->direction != y.scroll->direction ||
                     x.scroll->velocity_mps != y.scroll->velocity_mps ||
                     x.scroll->duration_s != y.scroll->duration_s))
      return false;
  }
  return true;
}

std::vector<sensor::MultiChannelTrace> make_streams(std::size_t count,
                                                    std::uint64_t seed) {
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,     synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp,   synth::MotionKind::kRub,
      synth::MotionKind::kScrollDown, synth::MotionKind::kDoubleClick,
  };
  std::vector<sensor::MultiChannelTrace> traces;
  traces.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = seed ^ (0x57AE0 + s);
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
  }
  return traces;
}

struct RunResult {
  double wall_s = 0.0;
  std::uint64_t frames = 0;
  std::vector<core::SessionEvent> events;
};

/// Small workload: full streams, round-robin driver.
RunResult run_small(const std::shared_ptr<const core::ModelBundle>& bundle,
                    const std::vector<sensor::MultiChannelTrace>& traces,
                    std::size_t shards, std::size_t frames_per_turn) {
  core::HostConfig config;
  config.shards = shards;
  core::MultiSessionHost host(bundle, traces.size(),
                              bundle->config().fault_policy, config);
  const auto start = std::chrono::steady_clock::now();
  // One producer thread per shard (bit-identical events): wide shard
  // counts measure the host instead of a single-threaded feeder.
  auto events = host.run_round_robin_parallel(traces, frames_per_turn);
  RunResult result;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  result.frames = host.frames_processed();
  result.events = std::move(events);
  return result;
}

/// Big workload: `sessions` lanes reusing `traces` mod size, each fed up
/// to `frames_per_stream` frames in interleaved bursts (one producer
/// thread per shard, the shard workers consuming concurrently), then
/// finished and drained.
RunResult run_big(const std::shared_ptr<const core::ModelBundle>& bundle,
                  const std::vector<sensor::MultiChannelTrace>& traces,
                  std::size_t sessions, std::size_t frames_per_stream,
                  std::size_t shards, std::size_t burst) {
  core::HostConfig config;
  config.shards = shards;
  core::MultiSessionHost host(bundle, sessions,
                              bundle->config().fault_policy, config);

  const auto start = std::chrono::steady_clock::now();
  bench::feed_pooled(host, traces, sessions, frames_per_stream, burst);
  host.finish();
  RunResult result;
  result.events = host.drain();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  result.frames = host.frames_processed();
  return result;
}

struct Sweep {
  std::vector<std::size_t> shard_counts;
  std::vector<double> wall_s;
  std::vector<double> frames_per_second;
  bool deterministic = true;
};

void emit_sweep(std::ostream& os, const char* indent, const Sweep& s) {
  os << indent << "\"shards\": [";
  for (std::size_t i = 0; i < s.shard_counts.size(); ++i)
    os << (i ? ", " : "") << s.shard_counts[i];
  os << "],\n" << indent << "\"wall_s\": [";
  for (std::size_t i = 0; i < s.wall_s.size(); ++i)
    os << (i ? ", " : "") << s.wall_s[i];
  os << "],\n" << indent << "\"frames_per_second\": [";
  for (std::size_t i = 0; i < s.frames_per_second.size(); ++i)
    os << (i ? ", " : "") << s.frames_per_second[i];
  os << "]";
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("bench_host_scaling",
                  "sharded serving throughput vs shard count");
  cli.add_flag("streams", "16", "sessions in the small workload");
  cli.add_flag("turn", "64", "frames fanned to each stream per turn");
  cli.add_flag("rounds", "3", "timed repetitions per shard count (best-of)");
  cli.add_flag("big-streams", "10000", "sessions in the big workload");
  cli.add_flag("big-frames", "512", "frames fed per big-workload session");
  cli.add_flag("big-trace-pool", "32", "distinct traces reused by big lanes");
  cli.add_flag("min-speedup", "1.6",
               "required 4-shard speedup over 1 shard (when hw allows)");
  cli.add_flag("out", "bench_host_scaling.json", "JSON report path");
  const auto args = bench::parse_args(
      argc, argv, "bench_host_scaling",
      "sharded serving throughput vs shard count", &cli);
  if (!args) return 0;

  const auto streams = static_cast<std::size_t>(cli.get_int("streams"));
  const auto turn = static_cast<std::size_t>(cli.get_int("turn"));
  const auto rounds = static_cast<int>(cli.get_int("rounds"));
  const auto big_streams =
      static_cast<std::size_t>(cli.get_int("big-streams"));
  const auto big_frames =
      static_cast<std::size_t>(cli.get_int("big-frames"));
  const auto big_pool =
      static_cast<std::size_t>(cli.get_int("big-trace-pool"));
  const double min_speedup = std::stod(cli.get("min-speedup"));

  std::cout << "training the shared bundle...\n";
  const auto bundle = bench::train_bundle(*args);

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t native = hw != 0 ? hw : 1;
  std::vector<std::size_t> shard_counts{1, 2};
  shard_counts.push_back(native > 4 ? native : 4);

  // ------------------------------------------------------ small workload
  std::cout << "synthesizing " << streams << " stream traces...\n";
  const auto small_traces = make_streams(streams, args->seed);
  std::uint64_t small_frames = 0;
  for (const auto& t : small_traces) small_frames += t.sample_count();

  Sweep small;
  small.shard_counts = shard_counts;
  std::vector<core::SessionEvent> reference;
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    RunResult best;
    best.wall_s = 1e100;
    for (int r = 0; r < rounds; ++r) {
      RunResult run =
          run_small(bundle, small_traces, shard_counts[i], turn);
      if (run.wall_s < best.wall_s) best = std::move(run);
    }
    small.wall_s.push_back(best.wall_s);
    small.frames_per_second.push_back(
        static_cast<double>(best.frames) / best.wall_s);
    if (i == 0) {
      reference = std::move(best.events);
    } else if (!events_equal(reference, best.events)) {
      std::cerr << "DETERMINISM VIOLATION: small-workload events differ "
                << "between 1 and " << shard_counts[i] << " shards\n";
      return 1;
    }
    std::cout << "  small " << shard_counts[i]
              << " shard(s): " << small.wall_s.back() << " s ("
              << small.frames_per_second.back() << " frames/s)\n";
  }

  // -------------------------------------------------------- big workload
  std::cout << "synthesizing " << big_pool << " traces for "
            << big_streams << " lanes...\n";
  const auto big_traces = make_streams(big_pool, args->seed ^ 0xB16);

  Sweep big;
  big.shard_counts = shard_counts;
  std::vector<core::SessionEvent> big_reference;
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    RunResult run = run_big(bundle, big_traces, big_streams, big_frames,
                            shard_counts[i], 64);
    big.wall_s.push_back(run.wall_s);
    big.frames_per_second.push_back(
        static_cast<double>(run.frames) / run.wall_s);
    if (i == 0) {
      big_reference = std::move(run.events);
    } else if (!events_equal(big_reference, run.events)) {
      std::cerr << "DETERMINISM VIOLATION: big-workload events differ "
                << "between 1 and " << shard_counts[i] << " shards\n";
      return 1;
    }
    std::cout << "  big " << shard_counts[i] << " shard(s): "
              << big.wall_s.back() << " s ("
              << big.frames_per_second.back() << " frames/s)\n";
  }

  // -------------------------------------------------------- scaling gate
  // Hardware-aware: a shard count above the machine's real thread count
  // cannot speed anything up, so only counts the hardware can actually
  // run in parallel are gated. On a 1-core box every gate is skipped.
  std::string gate = "passed";
  bool gate_failed = false;
  if (native < 4) {
    gate = "skipped (" + std::to_string(native) + " hardware thread" +
           (native == 1 ? "" : "s") + ")";
  } else {
    const auto fps_at = [&](std::size_t shards) {
      for (std::size_t i = 0; i < big.shard_counts.size(); ++i)
        if (big.shard_counts[i] == shards) return big.frames_per_second[i];
      return 0.0;
    };
    const double speedup4 = fps_at(4 <= native ? 4 : native) / fps_at(1);
    if (speedup4 < min_speedup) {
      gate = "FAILED: " + std::to_string(speedup4) + "x at 4 shards (< " +
             std::to_string(min_speedup) + "x)";
      gate_failed = true;
    }
    for (std::size_t i = 1; i < big.shard_counts.size() && !gate_failed;
         ++i) {
      if (big.shard_counts[i] > native) break;  // can't expect more
      if (big.frames_per_second[i] <
          0.95 * big.frames_per_second[i - 1]) {
        gate = "FAILED: non-monotonic at " +
               std::to_string(big.shard_counts[i]) + " shards";
        gate_failed = true;
      }
    }
  }

  const auto emit = [&](std::ostream& os) {
    os << "{\n  \"hardware_threads\": " << native << ",\n";
    os << "  \"small\": {\n    \"streams\": " << streams
       << ",\n    \"frames_total\": " << small_frames << ",\n";
    emit_sweep(os, "    ", small);
    os << ",\n    \"events_total\": " << reference.size() << "\n  },\n";
    os << "  \"big\": {\n    \"streams\": " << big_streams
       << ",\n    \"frames_per_stream\": " << big_frames << ",\n";
    emit_sweep(os, "    ", big);
    os << ",\n    \"events_total\": " << big_reference.size()
       << "\n  },\n";
    os << "  \"min_speedup_required\": " << min_speedup << ",\n";
    os << "  \"scaling_gate\": \"" << gate << "\",\n";
    os << "  \"deterministic_across_shards\": true\n}\n";
  };
  std::ofstream file(cli.get("out"));
  emit(file);
  std::cout << "\nhost-scaling report (" << cli.get("out") << "):\n";
  emit(std::cout);
  if (gate_failed) {
    std::cerr << "SCALING REGRESSION: " << gate << "\n";
    return 1;
  }
  return 0;
}
