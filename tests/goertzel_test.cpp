// Tests for the Goertzel detector (the lock-in mechanism reference).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/goertzel.hpp"

namespace airfinger::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> tone(std::size_t n, double freq, double rate,
                         double amplitude) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = amplitude * std::sin(2.0 * kPi * freq * i / rate);
  return x;
}

TEST(Goertzel, RecoversToneAmplitude) {
  const auto x = tone(1000, 1000.0, 8000.0, 3.0);
  EXPECT_NEAR(goertzel_magnitude(x, 1000.0, 8000.0), 3.0, 0.05);
}

TEST(Goertzel, RejectsOffBinTone) {
  const auto x = tone(1024, 1000.0, 8000.0, 3.0);
  EXPECT_LT(goertzel_magnitude(x, 2600.0, 8000.0), 0.15);
}

TEST(Goertzel, ExtractsCarrierFromAmbientContamination) {
  // A modulated-LED reflection (1 kHz carrier, amplitude = reflection
  // strength) buried under a large DC ambient + slow drift: the Goertzel
  // bin reads the reflection and ignores the ambient — the lock-in effect
  // modelled by sensor::FrontEndSpec.
  const double rate = 8000.0, carrier = 1000.0;
  common::Rng rng(1);
  std::vector<double> x(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / rate;
    const double reflection = 0.4 * std::sin(2.0 * kPi * carrier * t);
    const double ambient = 50.0 + 5.0 * std::sin(2.0 * kPi * 2.0 * t);
    x[i] = reflection + ambient + rng.normal(0.0, 0.05);
  }
  EXPECT_NEAR(goertzel_magnitude(x, carrier, rate), 0.4, 0.05);
}

TEST(Goertzel, StreamingBlocksTrackAmplitudeChanges) {
  const double rate = 8000.0, carrier = 1000.0;
  GoertzelDetector det(carrier, rate, 80);
  std::vector<double> magnitudes;
  for (int i = 0; i < 800; ++i) {
    const double t = static_cast<double>(i) / rate;
    const double amplitude = i < 400 ? 1.0 : 2.0;  // reflection doubles
    if (det.push(amplitude * std::sin(2.0 * kPi * carrier * t)))
      magnitudes.push_back(det.last_magnitude());
  }
  ASSERT_EQ(magnitudes.size(), 10u);
  EXPECT_NEAR(magnitudes[2], 1.0, 0.1);
  EXPECT_NEAR(magnitudes[8], 2.0, 0.1);
}

TEST(Goertzel, ResetClearsState) {
  GoertzelDetector det(1000.0, 8000.0, 16);
  for (int i = 0; i < 10; ++i) det.push(1.0);
  det.reset();
  EXPECT_DOUBLE_EQ(det.last_magnitude(), 0.0);
}

TEST(Goertzel, PreconditionsEnforced) {
  const std::vector<double> empty;
  EXPECT_THROW(goertzel_magnitude(empty, 100.0, 1000.0), PreconditionError);
  const std::vector<double> x(16, 1.0);
  EXPECT_THROW(goertzel_magnitude(x, 600.0, 1000.0), PreconditionError);
  EXPECT_THROW(GoertzelDetector(100.0, 1000.0, 4), PreconditionError);
}

}  // namespace
}  // namespace airfinger::dsp
