// Unit tests for the observability layer (src/obs/, DESIGN.md §13):
// saturating counters, the fixed-shape Registry and its index-wise
// aggregation, log-spaced histograms, the deterministic TickClock, the
// overwrite-oldest EventRing, both exposition round-trips, and the
// MultiSessionHost health/metrics aggregates over mixed healthy and
// quarantined lanes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "obs/clock.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

// ------------------------------------------------- saturating arithmetic

TEST(SaturatingAdd, ClampsInsteadOfWrapping) {
  EXPECT_EQ(obs::saturating_add(2, 3), 5u);
  EXPECT_EQ(obs::saturating_add(kMax, 0), kMax);
  EXPECT_EQ(obs::saturating_add(kMax, 1), kMax);
  EXPECT_EQ(obs::saturating_add(kMax - 1, 1), kMax);
  EXPECT_EQ(obs::saturating_add(kMax, kMax), kMax);
}

TEST(HealthStats, AggregationSaturatesOnLargeCounts) {
  core::HealthStats a;
  a.frames = kMax - 10;
  a.non_finite_samples = kMax;
  a.quarantines = 7;
  core::HealthStats b;
  b.frames = 100;  // would wrap to 89 with plain addition
  b.non_finite_samples = 1;
  b.quarantines = 2;
  a += b;
  EXPECT_EQ(a.frames, kMax);
  EXPECT_EQ(a.non_finite_samples, kMax);
  EXPECT_EQ(a.quarantines, 9u);
}

// ---------------------------------------------------------------- registry

TEST(Registry, CountersGaugesAndHistogramsRecord) {
  obs::Registry reg;
  const auto frames = reg.counter("frames_total", "frames");
  const auto depth = reg.gauge("queue_depth", "depth");
  const auto lat = reg.histogram("latency_ns", "latency",
                                 {.least = 10.0, .most = 1e6, .buckets = 6});

  reg.inc(frames);
  reg.inc(frames, 4);
  EXPECT_EQ(reg.counter_value(frames), 5u);
  reg.inc(frames, kMax);  // saturates, never wraps
  EXPECT_EQ(reg.counter_value(frames), kMax);

  reg.set(depth, 3.5);
  EXPECT_EQ(reg.gauge_value(depth), 3.5);

  reg.observe(lat, 5.0);     // below first bound -> first bucket
  reg.observe(lat, 2e6);     // above last bound  -> +Inf bucket
  reg.observe(lat, 100.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricEntry* e = snap.find("latency_ns");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->type, obs::MetricEntry::Type::kHistogram);
  EXPECT_EQ(e->count, 3u);
  EXPECT_EQ(e->value, 5.0 + 2e6 + 100.0);  // sum
  EXPECT_EQ(e->min, 5.0);
  EXPECT_EQ(e->max, 2e6);
  ASSERT_EQ(e->bounds.size(), 6u);
  ASSERT_EQ(e->buckets.size(), 7u);
  // Geometric bounds with both endpoints pinned exactly.
  EXPECT_EQ(e->bounds.front(), 10.0);
  EXPECT_EQ(e->bounds.back(), 1e6);
  for (std::size_t i = 1; i < e->bounds.size(); ++i)
    EXPECT_GT(e->bounds[i], e->bounds[i - 1]);
  // Bounds are 10, 100, ..., 1e6 (ratio 10): 5.0 lands below the first
  // bound, 100.0 exactly on the second (le semantics), 2e6 in +Inf.
  EXPECT_EQ(e->buckets[0], 1u);
  EXPECT_EQ(e->buckets[1], 1u);
  std::uint64_t total = 0;
  for (const auto b : e->buckets) total += b;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(e->buckets.back(), 1u);  // the 2e6 observation
}

TEST(Registry, AddFromAggregatesIndexWise) {
  const auto build = [] {
    obs::Registry reg;
    reg.counter("a_total", "a");
    reg.gauge("g", "g");
    reg.histogram("h_ns", "h", {.least = 1.0, .most = 1e3, .buckets = 4});
    return reg;
  };
  obs::Registry lhs = build();
  obs::Registry rhs = build();
  lhs.inc(0, 10);
  rhs.inc(0, 5);
  lhs.set(0, 1.0);
  rhs.set(0, 2.0);
  lhs.observe(0, 2.0);
  rhs.observe(0, 500.0);

  lhs.add_from(rhs);
  const auto snap = lhs.snapshot();
  EXPECT_EQ(snap.find("a_total")->count, 15u);
  // Gauges aggregate by sum (af_quarantined over N lanes = degraded count).
  EXPECT_EQ(snap.find("g")->value, 3.0);
  const auto* h = snap.find("h_ns");
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->value, 502.0);
  EXPECT_EQ(h->min, 2.0);
  EXPECT_EQ(h->max, 500.0);
}

TEST(Registry, AddFromRejectsSchemaMismatch) {
  obs::Registry a;
  a.counter("x_total", "x");
  obs::Registry b;
  b.counter("y_total", "y");
  EXPECT_THROW(a.add_from(b), PreconditionError);

  obs::Registry c;
  c.gauge("x_total", "x");  // same name, different type
  EXPECT_THROW(a.add_from(c), PreconditionError);
}

TEST(Registry, ResetValuesKeepsSchema) {
  obs::Registry reg;
  const auto c = reg.counter("c_total", "c");
  const auto h = reg.histogram("h_ns", "h", {});
  reg.inc(c, 9);
  reg.observe(h, 1234.0);
  reg.reset_values();
  EXPECT_EQ(reg.counter_value(c), 0u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.find("h_ns")->count, 0u);
  EXPECT_EQ(snap.find("h_ns")->value, 0.0);
}

// ------------------------------------------------------------------ clock

TEST(TickClock, AdvancesDeterministically) {
  obs::TickClock clock(250, 1000);
  EXPECT_EQ(clock.now_ns(), 1000u);
  EXPECT_EQ(clock.now_ns(), 1250u);
  EXPECT_EQ(clock.now_ns(), 1500u);
  obs::TickClock again(250, 1000);
  EXPECT_EQ(again.now_ns(), 1000u);  // same sequence every construction
}

// ------------------------------------------------------------- event ring

TEST(EventRing, OverwritesOldestAndCountsDrops) {
  obs::EventRing ring(3);
  obs::PipelineEvent e;
  for (std::uint64_t i = 0; i < 3; ++i) {
    e.frame = i;
    EXPECT_TRUE(ring.push(e));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);

  e.frame = 3;
  EXPECT_FALSE(ring.push(e));  // evicts frame 0
  EXPECT_EQ(ring.dropped(), 1u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().frame, 1u);  // oldest first
  EXPECT_EQ(events.back().frame, 3u);

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, WraparoundKeepsExactDropCountsAcrossCapacityBoundaries) {
  // Push totals chosen to land exactly on, one past, and well beyond the
  // capacity boundary (including several full wraps): the retained window
  // must always be the newest `capacity` events in order, and `dropped`
  // must equal pushes minus capacity, exactly.
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{3},
                                     std::size_t{4}, std::size_t{7}}) {
    for (const std::size_t pushes :
         {capacity, capacity + 1, 2 * capacity, 2 * capacity + 3,
          5 * capacity + capacity / 2}) {
      SCOPED_TRACE("capacity " + std::to_string(capacity) + ", pushes " +
                   std::to_string(pushes));
      obs::EventRing ring(capacity);
      obs::PipelineEvent e;
      for (std::uint64_t i = 0; i < pushes; ++i) {
        e.frame = i;
        EXPECT_EQ(ring.push(e), i < capacity);
      }
      EXPECT_EQ(ring.size(), std::min(pushes, capacity));
      EXPECT_EQ(ring.dropped(), pushes - std::min(pushes, capacity));
      const auto events = ring.events();
      ASSERT_EQ(events.size(), std::min(pushes, capacity));
      for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].frame, pushes - events.size() + i);
    }
  }
}

TEST(EventRing, CopyRecentTakesTheNewestWindowWithoutAllocating) {
  obs::EventRing ring(4);
  obs::PipelineEvent e;
  for (std::uint64_t i = 0; i < 7; ++i) {  // wraps: retains frames 3..6
    e.frame = i;
    ring.push(e);
  }
  obs::PipelineEvent out[8];
  // Window smaller than retained: the newest two, oldest of them first.
  ASSERT_EQ(ring.copy_recent(out, 2), 2u);
  EXPECT_EQ(out[0].frame, 5u);
  EXPECT_EQ(out[1].frame, 6u);
  // Window larger than retained: everything, still oldest first.
  ASSERT_EQ(ring.copy_recent(out, 8), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].frame, 3 + i);
  EXPECT_EQ(ring.copy_recent(out, 0), 0u);
}

// ------------------------------------------------------------- exposition

obs::MetricsSnapshot sample_snapshot() {
  obs::Registry reg;
  const auto c = reg.counter("af_frames_total", "Frames seen");
  const auto g = reg.gauge("af_quarantined", "Degraded flag");
  const auto h = reg.histogram("af_stage_ingest_ns", "Ingest latency",
                               {.least = 100.0, .most = 1e9, .buckets = 36});
  reg.inc(c, 12345);
  reg.set(g, 1.0);
  reg.observe(h, 37.0);
  reg.observe(h, 41250.5);
  reg.observe(h, 2e9);
  reg.observe(h, 0.1);
  return reg.snapshot();
}

TEST(Exposition, JsonRoundTripsToFullSnapshotEquality) {
  const obs::MetricsSnapshot snapshot = sample_snapshot();
  const std::string json = obs::to_json(snapshot);
  std::istringstream is(json);
  const obs::MetricsSnapshot back = obs::parse_json(is);
  EXPECT_EQ(back, snapshot);  // bit-exact, min/max included
}

TEST(Exposition, PrometheusWriteParseWriteIsByteStable) {
  const obs::MetricsSnapshot snapshot = sample_snapshot();
  const std::string text = obs::to_prometheus(snapshot);
  std::istringstream is(text);
  const obs::MetricsSnapshot back = obs::parse_prometheus(is);
  // The exposition format has no histogram min/max field, so the round
  // trip contract is byte-stability of the text, not snapshot equality.
  EXPECT_EQ(obs::to_prometheus(back), text);
  // Everything the format does carry must survive exactly.
  EXPECT_EQ(back.find("af_frames_total")->count, 12345u);
  EXPECT_EQ(back.find("af_quarantined")->value, 1.0);
  const auto* h = back.find("af_stage_ingest_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->value, snapshot.find("af_stage_ingest_ns")->value);
  EXPECT_EQ(h->buckets, snapshot.find("af_stage_ingest_ns")->buckets);
}

TEST(Exposition, ExtremeValuesSurviveBothRoundTripsExactly) {
  // The %.17g exactness contract at the edges of double: denormals (down
  // to the smallest positive 5e-324), near-overflow magnitudes, negative
  // zero-adjacent gauges, and infinite histogram sums (an observation of
  // +Inf lands in the +Inf bucket and poisons the sum — the exposition
  // must carry that faithfully, not normalize it away).
  constexpr double kDenormalMin = 5e-324;
  constexpr double kHuge = 1.7976931348623157e308;  // DBL_MAX
  obs::Registry reg;
  const auto g_tiny = reg.gauge("af_tiny", "denormal gauge");
  const auto g_huge = reg.gauge("af_huge", "near-overflow gauge");
  const auto g_neg = reg.gauge("af_neg", "negative denormal gauge");
  const auto g_inf = reg.gauge("af_inf", "infinite gauge");
  const auto h = reg.histogram("af_h", "extreme observations",
                               {.least = 1e-30, .most = 1e30,
                                .buckets = 24});
  reg.set(g_tiny, kDenormalMin);
  reg.set(g_huge, kHuge);
  reg.set(g_neg, -kDenormalMin);
  reg.set(g_inf, std::numeric_limits<double>::infinity());
  reg.observe(h, kDenormalMin);
  reg.observe(h, kHuge);
  reg.observe(h, std::numeric_limits<double>::infinity());
  const obs::MetricsSnapshot snapshot = reg.snapshot();

  // JSON round trip: full snapshot equality, bit-exact doubles included.
  std::istringstream json_in(obs::to_json(snapshot));
  const obs::MetricsSnapshot from_json = obs::parse_json(json_in);
  EXPECT_EQ(from_json, snapshot);
  EXPECT_EQ(from_json.find("af_tiny")->value, kDenormalMin);
  EXPECT_EQ(from_json.find("af_huge")->value, kHuge);
  EXPECT_EQ(from_json.find("af_neg")->value, -kDenormalMin);
  EXPECT_EQ(from_json.find("af_inf")->value,
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(from_json.find("af_h")->value));  // sum

  // Prometheus round trip: byte-stable text, and every carried field
  // exact — including the denormal min and the infinite sum.
  const std::string text = obs::to_prometheus(snapshot);
  std::istringstream prom_in(text);
  const obs::MetricsSnapshot from_prom = obs::parse_prometheus(prom_in);
  EXPECT_EQ(obs::to_prometheus(from_prom), text);
  EXPECT_EQ(from_prom.find("af_tiny")->value, kDenormalMin);
  EXPECT_EQ(from_prom.find("af_huge")->value, kHuge);
  const auto* hist = from_prom.find("af_h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_TRUE(std::isinf(hist->value));
  EXPECT_EQ(hist->buckets, snapshot.find("af_h")->buckets);
  EXPECT_EQ(hist->buckets.back(), 2u);  // DBL_MAX and +Inf land past 1e30
}

TEST(Exposition, HistogramQuantileClampsToObservedRange) {
  obs::Registry reg;
  const auto h = reg.histogram("h_ns", "h",
                               {.least = 10.0, .most = 1e6, .buckets = 12});
  for (int i = 0; i < 100; ++i) reg.observe(h, 1000.0);
  const auto snap = reg.snapshot();
  const auto* e = snap.find("h_ns");
  EXPECT_EQ(obs::histogram_quantile(*e, 0.0), 1000.0);
  EXPECT_EQ(obs::histogram_quantile(*e, 1.0), 1000.0);
  const double p50 = obs::histogram_quantile(*e, 0.5);
  EXPECT_GE(p50, 1000.0);
  EXPECT_LE(p50, 1000.0);

  obs::MetricEntry empty;
  empty.type = obs::MetricEntry::Type::kHistogram;
  EXPECT_EQ(obs::histogram_quantile(empty, 0.5), 0.0);
}

// ------------------------------------------- host aggregation (satellite)

/// Small shared bundle (same scale as the golden-replay reference).
const std::shared_ptr<const core::ModelBundle>& test_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

TEST(HostAggregation, HealthSumsQuarantinedAndHealthyLanes) {
  core::FaultPolicy policy;
  policy.enabled = true;
  policy.stuck_run_limit = 16;
  policy.recovery_frames = 32;

  core::MultiSessionHost host(test_bundle(), 2, policy);
  const std::size_t channels = test_bundle()->config().channels;

  // Lane 0: a stuck stream (bit-identical frames beyond the run limit)
  // that must quarantine. Lane 1: clean, varying samples.
  std::vector<double> stuck(channels, 0.25);
  std::vector<double> clean(channels);
  for (std::size_t f = 0; f < 200; ++f) {
    host.feed(0, stuck);
    for (std::size_t c = 0; c < channels; ++c)
      clean[c] = 0.01 * std::sin(0.37 * static_cast<double>(f + c));
    host.feed(1, clean);
  }
  host.pump();
  host.finish();

  const core::HealthStats health0 = host.session(0).health();
  const core::HealthStats health1 = host.session(1).health();
  EXPECT_GT(health0.quarantines, 0u);
  EXPECT_GT(health0.stuck_samples, 0u);
  EXPECT_TRUE(health1.clean());
  EXPECT_EQ(health1.frames, 200u);

  core::HealthStats expected = health0;
  expected += health1;
  EXPECT_EQ(host.aggregate_health(), expected);
}

TEST(HostAggregation, MetricsMergeLanesAndAppendHostSeries) {
  core::MultiSessionHost host(test_bundle(), 3);
  const std::size_t channels = test_bundle()->config().channels;
  std::vector<double> frame(channels, 0.0);
  for (std::size_t f = 0; f < 50; ++f) {
    for (std::size_t c = 0; c < channels; ++c)
      frame[c] = 0.01 * std::sin(0.29 * static_cast<double>(3 * f + c));
    host.feed(0, frame);
    if (f % 2 == 0) host.feed(1, frame);
  }
  host.pump();
  host.finish();

  const obs::MetricsSnapshot total = host.aggregate_metrics();
  EXPECT_EQ(total.find("af_frames_total")->count, 75u);  // 50 + 25 + 0
  EXPECT_EQ(total.find("af_host_sessions")->value, 3.0);
  EXPECT_EQ(total.find("af_host_faulted_sessions")->value, 0.0);
  EXPECT_EQ(total.find("af_host_frames_processed_total")->count, 75u);
  EXPECT_EQ(total.find("af_host_dropped_frames_total")->count, 0u);
  ASSERT_NE(total.find("af_bundle_load_seconds"), nullptr);
  // In-process bundles record no load time.
  EXPECT_EQ(total.find("af_bundle_load_seconds")->value, 0.0);
  // The merged snapshot must expose cleanly in both formats.
  EXPECT_FALSE(obs::to_prometheus(total).empty());
  std::istringstream is(obs::to_json(total));
  EXPECT_EQ(obs::parse_json(is), total);
}

}  // namespace
}  // namespace airfinger
