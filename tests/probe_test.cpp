// Locks the event-driven incremental probe (DESIGN.md §16): the
// OpenSegmentTiming cache must reproduce the batch segment_timing() bit
// for bit at EVERY prefix length (the streaming cadence, no skipped
// frames), ModelBundle::probe_direction over the cache — including its
// change-detection short-circuit — must return exactly what the cacheless
// overload returns at every prefix, and the multi-producer round-robin
// driver must drain events bit-identical to the single-feeder inline host.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "core/ascending.hpp"
#include "core/data_processor.hpp"
#include "core/multi_session_host.hpp"
#include "core/timing_cache.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

void expect_bits(double a, double b, const char* what) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

void expect_timing_equal(const core::SegmentTiming& a,
                         const core::SegmentTiming& b, std::size_t n) {
  SCOPED_TRACE("window length " + std::to_string(n));
  ASSERT_EQ(a.active.size(), b.active.size());
  for (std::size_t c = 0; c < a.active.size(); ++c) {
    EXPECT_EQ(a.active[c], b.active[c]);
    expect_bits(a.tau_s[c], b.tau_s[c], "tau_s");
  }
  EXPECT_EQ(a.first_active, b.first_active);
  EXPECT_EQ(a.last_active, b.last_active);
  expect_bits(a.dt_outer_s, b.dt_outer_s, "dt_outer_s");
  EXPECT_EQ(a.envelope_peaks, b.envelope_peaks);
  expect_bits(a.asymmetry_start, b.asymmetry_start, "asymmetry_start");
  expect_bits(a.asymmetry_end, b.asymmetry_end, "asymmetry_end");
  expect_bits(a.asymmetry_delta, b.asymmetry_delta, "asymmetry_delta");
  expect_bits(a.transition_s, b.transition_s, "transition_s");
  expect_bits(a.asymmetry_range, b.asymmetry_range, "asymmetry_range");
  EXPECT_EQ(a.asymmetry_reversals, b.asymmetry_reversals);
}

/// Synthetic ΔRSS² windows: Gaussian humps per channel over noise. The
/// three shapes cover the router's verdict space — sequential humps route
/// track-aimed (a scroll), a common hump routes detect-aimed (a click),
/// and noise stays undecidable.
std::vector<std::vector<double>> make_windows(int shape, std::size_t channels,
                                              std::size_t total,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(0.0, 0.35);
  std::vector<std::vector<double>> out(channels, std::vector<double>(total));
  for (std::size_t c = 0; c < channels; ++c) {
    const double centre =
        shape == 0 ? (0.25 + 0.22 * static_cast<double>(c)) *
                         static_cast<double>(total)
        : shape == 1 ? 0.5 * static_cast<double>(total)
                     : -100.0;
    for (std::size_t i = 0; i < total; ++i) {
      const double d = (static_cast<double>(i) - centre) / 9.0;
      out[c][i] = 40.0 * std::exp(-0.5 * d * d) + noise(rng);
    }
  }
  return out;
}

// The incremental cache must agree with the batch analysis at *every*
// prefix length — the per-frame streaming cadence the probe actually
// runs at, with no lazy-advance gaps hiding a frontier bug.
TEST(IncrementalProbe, TimingMatchesBatchAtEveryPrefixLength) {
  constexpr std::size_t kChannels = 3;
  constexpr double kRate = 100.0;
  const core::TimingConfig config;

  for (int shape = 0; shape < 3; ++shape) {
    SCOPED_TRACE("shape " + std::to_string(shape));
    const std::size_t total = 150 + static_cast<std::size_t>(shape) * 31;
    const auto channels =
        make_windows(shape, kChannels, total, 911 + shape);

    core::OpenSegmentTiming cache;
    cache.configure(kChannels, kRate, config);
    cache.begin_segment();
    common::ScratchArena cache_arena;
    common::ScratchArena batch_arena;
    double frame[kChannels];
    std::vector<std::span<const double>> windows(kChannels);
    for (std::size_t n = 1; n <= total; ++n) {
      for (std::size_t c = 0; c < kChannels; ++c)
        frame[c] = channels[c][n - 1];
      cache.append({frame, kChannels});
      for (std::size_t c = 0; c < kChannels; ++c)
        windows[c] = std::span<const double>(channels[c].data(), n);
      const std::span<const std::span<const double>> w(windows);
      const auto incremental = cache.timing(w, cache_arena);
      const auto batch = core::segment_timing(w, kRate, config, batch_arena);
      expect_timing_equal(incremental, batch, n);
    }
  }
}

// refresh()'s change gate must be *sound*: whenever it reports "nothing
// decision-relevant changed", the statistics the router reads must be
// bit-identical to the previous frame's. (Completeness — reporting few
// changes — is what the bench measures; soundness is what correctness
// rests on.)
TEST(IncrementalProbe, UnchangedRefreshImpliesIdenticalRouterInputs) {
  constexpr std::size_t kChannels = 3;
  constexpr double kRate = 100.0;
  const core::TimingConfig config;
  const std::size_t total = 180;
  const auto channels = make_windows(0, kChannels, total, 77);

  core::OpenSegmentTiming cache;
  cache.configure(kChannels, kRate, config);
  cache.begin_segment();
  common::ScratchArena arena;
  double frame[kChannels];
  std::vector<std::span<const double>> windows(kChannels);
  core::SegmentTiming prev;
  bool have_prev = false;
  std::size_t unchanged_frames = 0;
  for (std::size_t n = 1; n <= total; ++n) {
    for (std::size_t c = 0; c < kChannels; ++c) frame[c] = channels[c][n - 1];
    cache.append({frame, kChannels});
    for (std::size_t c = 0; c < kChannels; ++c)
      windows[c] = std::span<const double>(channels[c].data(), n);
    const std::span<const std::span<const double>> w(windows);
    const bool changed = cache.refresh(w);
    // Idempotent re-entry: a second refresh over the same window reports
    // the same verdict (the probe may be re-run without a new append).
    EXPECT_EQ(cache.refresh(w), changed);
    const auto timing = cache.timing(w, arena);
    if (!changed) {
      ASSERT_TRUE(have_prev);
      ++unchanged_frames;
      SCOPED_TRACE("window length " + std::to_string(n));
      EXPECT_EQ(timing.first_active, prev.first_active);
      expect_bits(timing.asymmetry_delta, prev.asymmetry_delta,
                  "asymmetry_delta");
      expect_bits(timing.transition_s, prev.transition_s, "transition_s");
      expect_bits(timing.asymmetry_range, prev.asymmetry_range,
                  "asymmetry_range");
      EXPECT_EQ(timing.asymmetry_reversals, prev.asymmetry_reversals);
    }
    prev = timing;
    have_prev = true;
  }
  // The decay tail of the humps must actually exercise the gate — a gate
  // that never fires would vacuously pass the soundness check above.
  EXPECT_GT(unchanged_frames, 0u);
}

/// One small trained bundle shared by the probe-identity and host tests
/// (training dominates the suite's cost; the bundle is immutable).
const std::shared_ptr<const core::ModelBundle>& trained_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

void expect_estimates_equal(const std::optional<core::ScrollEstimate>& a,
                            const std::optional<core::ScrollEstimate>& b,
                            std::size_t n) {
  SCOPED_TRACE("window length " + std::to_string(n));
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a) return;
  expect_bits(a->direction, b->direction, "direction");
  expect_bits(a->velocity_mps, b->velocity_mps, "velocity_mps");
  expect_bits(a->duration_s, b->duration_s, "duration_s");
  EXPECT_EQ(a->used_experience_velocity, b->used_experience_velocity);
  ASSERT_EQ(a->delta_t_s.has_value(), b->delta_t_s.has_value());
  if (a->delta_t_s) expect_bits(*a->delta_t_s, *b->delta_t_s, "delta_t_s");
}

// probe_direction over the incremental cache — change-detection
// short-circuit included — must return exactly what the cacheless batch
// overload returns, probed at every prefix length like the streaming
// path does. Consecutive same-length probes (the short-circuit's
// hottest case) must also agree.
TEST(IncrementalProbe, ProbeDirectionMatchesCachelessAtEveryPrefix) {
  const auto& bundle = trained_bundle();
  const std::size_t channels = bundle->config().channels;
  const double rate = bundle->config().sample_rate_hz;

  for (int shape = 0; shape < 3; ++shape) {
    SCOPED_TRACE("shape " + std::to_string(shape));
    const std::size_t total = 160 + static_cast<std::size_t>(shape) * 19;
    const auto windows = make_windows(shape, channels, total, 4242 + shape);

    core::OpenSegmentTiming cache;
    cache.configure(channels, rate, bundle->probe_timing_config());
    cache.begin_segment();
    features::Workspace cached_ws;
    features::Workspace batch_ws;

    // Grow the open-segment view one frame at a time, exactly like the
    // session's streaming maintenance.
    core::ProcessedTrace view;
    view.delta_rss2.assign(channels, {});
    view.sample_rate_hz = rate;
    std::vector<double> frame(channels);
    for (std::size_t n = 1; n <= total; ++n) {
      double energy = 0.0;
      for (std::size_t c = 0; c < channels; ++c) {
        const double d = windows[c][n - 1];
        view.delta_rss2[c].push_back(d);
        frame[c] = d;
        energy += d;
      }
      view.energy.push_back(energy);
      cache.append({frame.data(), channels});

      const dsp::Segment local{0, n};
      const auto cached =
          bundle->probe_direction(view, local, cached_ws, cache);
      const auto batch = bundle->probe_direction(view, local, batch_ws);
      expect_estimates_equal(cached, batch, n);
      // Re-probe without an append: the short-circuit path must hold the
      // same verdict.
      expect_estimates_equal(
          bundle->probe_direction(view, local, cached_ws, cache), batch, n);
    }
  }
}

/// Distinct multi-gesture streams, one per hosted session.
std::vector<sensor::MultiChannelTrace> gesture_streams(std::size_t count) {
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle, synth::MotionKind::kScrollUp,
      synth::MotionKind::kClick, synth::MotionKind::kScrollDown};
  std::vector<sensor::MultiChannelTrace> traces;
  traces.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = 5100 + s;
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
  }
  return traces;
}

// The multi-producer driver (one feeder thread per shard, the scaling
// benches' producer shape) must drain events bit-identical to the
// single-feeder inline host — the disjoint-lane concurrent-feed contract
// under a real interleaving (and under TSan in the race suite).
TEST(IncrementalProbe, ParallelFeedersAreBitIdenticalToInlineHost) {
  const auto& bundle = trained_bundle();
  const auto traces = gesture_streams(6);

  core::HostConfig inline_config;
  inline_config.shards = 1;
  core::MultiSessionHost reference_host(bundle, traces.size(),
                                        bundle->config().fault_policy,
                                        inline_config);
  const auto reference = reference_host.run_round_robin(traces, 53);

  for (std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    core::HostConfig config;
    config.shards = shards;
    core::MultiSessionHost host(bundle, traces.size(),
                                bundle->config().fault_policy, config);
    const auto hosted = host.run_round_robin_parallel(traces, 53);
    ASSERT_EQ(hosted.size(), reference.size());
    for (std::size_t e = 0; e < hosted.size(); ++e) {
      SCOPED_TRACE("event " + std::to_string(e));
      EXPECT_EQ(hosted[e].session, reference[e].session);
      EXPECT_EQ(hosted[e].event.type, reference[e].event.type);
      EXPECT_EQ(hosted[e].event.time_s, reference[e].event.time_s);
      EXPECT_EQ(hosted[e].event.gesture, reference[e].event.gesture);
      EXPECT_EQ(hosted[e].event.segment_begin,
                reference[e].event.segment_begin);
      EXPECT_EQ(hosted[e].event.segment_end, reference[e].event.segment_end);
      ASSERT_EQ(hosted[e].event.scroll.has_value(),
                reference[e].event.scroll.has_value());
      if (hosted[e].event.scroll) {
        EXPECT_EQ(hosted[e].event.scroll->direction,
                  reference[e].event.scroll->direction);
        EXPECT_EQ(hosted[e].event.scroll->velocity_mps,
                  reference[e].event.scroll->velocity_mps);
        EXPECT_EQ(hosted[e].event.scroll->duration_s,
                  reference[e].event.scroll->duration_s);
      }
    }
  }
}

}  // namespace
}  // namespace airfinger
