// Thread-pool and parallel-primitive tests: coverage/ordering, exception
// propagation, nested-submission safety, AF_THREADS handling, and property
// tests that parallel_map is indistinguishable from serial std::transform.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"

namespace airfinger::common {
namespace {

TEST(ResolveThreadCount, HonoursAfThreadsEnvironment) {
  setenv("AF_THREADS", "3", 1);
  EXPECT_EQ(resolve_thread_count(), 3u);
  setenv("AF_THREADS", "1", 1);
  EXPECT_EQ(resolve_thread_count(), 1u);
  unsetenv("AF_THREADS");
  EXPECT_GE(resolve_thread_count(), 1u);
}

TEST(ResolveThreadCount, RejectsMalformedAfThreads) {
  setenv("AF_THREADS", "zero", 1);
  EXPECT_GE(resolve_thread_count(), 1u);
  setenv("AF_THREADS", "0", 1);
  EXPECT_GE(resolve_thread_count(), 1u);
  setenv("AF_THREADS", "-4", 1);
  EXPECT_GE(resolve_thread_count(), 1u);
  setenv("AF_THREADS", "4x", 1);
  EXPECT_GE(resolve_thread_count(), 1u);
  unsetenv("AF_THREADS");
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndSingleRanges) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(pool, 7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RespectsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 40, 100,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), i >= 40 ? 1 : 0) << "index " << i;
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, CompletesWholeRangeDespiteException) {
  // Exceptions abort one chunk, not the range: every other index still
  // runs, and the pool stays usable afterwards.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    parallel_for(pool, 0, 64, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first chunk dies");
      executed.fetch_add(1);
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_GE(executed.load(), 48);  // the other three chunks completed
  std::atomic<int> after{0};
  parallel_for(pool, 0, 32, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32);
}

TEST(ParallelFor, NestedSubmissionIsSafe) {
  // An inner parallel_for issued from a worker must run inline instead of
  // re-entering the (possibly fully busy) pool — this would deadlock a
  // naive implementation. Verify completion and full coverage.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 0, 8, [&](std::size_t outer) {
    parallel_for(pool, 0, 8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialPoolRunsInlineOnCallingThread) {
  // A 1-sized pool (the AF_THREADS=1 fallback) must never touch another
  // thread: every index runs on the caller.
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool all_on_caller = true;
  parallel_for(pool, 0, 32, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  EXPECT_TRUE(all_on_caller);
}

TEST(ScopedThreads, OverridesAndRestoresCurrentPool) {
  const auto caller = std::this_thread::get_id();
  {
    ScopedThreads serial(1);
    bool inline_exec = true;
    parallel_for(0, 16, [&](std::size_t) {
      if (std::this_thread::get_id() != caller) inline_exec = false;
    });
    EXPECT_TRUE(inline_exec);
    {
      ScopedThreads wide(4);
      std::vector<std::atomic<int>> hits(128);
      parallel_for(0, hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
    // Back to the serial override after the nested scope.
    bool still_inline = true;
    parallel_for(0, 16, [&](std::size_t) {
      if (std::this_thread::get_id() != caller) still_inline = false;
    });
    EXPECT_TRUE(still_inline);
  }
}

TEST(ParallelMap, PreservesOutputOrdering) {
  ScopedThreads scoped(4);
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  const auto out = parallel_map(items, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * static_cast<int>(i));
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput) {
  ScopedThreads scoped(4);
  const std::vector<int> none;
  EXPECT_TRUE(parallel_map(none, [](int v) { return v; }).empty());
}

TEST(ParallelMap, MatchesSerialTransformOnRandomWorkloads) {
  // Property test: for randomized sizes/values and varying pool widths,
  // parallel_map must equal std::transform bit for bit.
  Rng rng(0xC0FFEE);
  const auto fn = [](double v) { return std::sin(v) * 3.0 + v * v; };
  for (int round = 0; round < 24; ++round) {
    const std::size_t n = rng.below(400);
    std::vector<double> items(n);
    for (auto& v : items) v = rng.uniform(-50.0, 50.0);
    ScopedThreads scoped(1 + static_cast<std::size_t>(round) % 5);
    const auto par = parallel_map(items, fn);
    std::vector<double> ser(items.size());
    std::transform(items.begin(), items.end(), ser.begin(), fn);
    EXPECT_EQ(par, ser) << "round " << round;
  }
}

TEST(ParallelMap, RngSplitStreamsAreThreadCountInvariant) {
  // The repo-wide determinism recipe in miniature: one indexed Rng stream
  // per item makes the parallel result independent of the worker count.
  const Rng root(99);
  std::vector<std::size_t> ids(200);
  std::iota(ids.begin(), ids.end(), 0);
  const auto draw = [&root](std::size_t id) {
    Rng stream = root.split(id);
    double acc = 0.0;
    for (int k = 0; k < 16; ++k) acc += stream.normal();
    return acc;
  };
  std::vector<std::vector<double>> results;
  for (std::size_t threads : {1u, 2u, 5u}) {
    ScopedThreads scoped(threads);
    results.push_back(parallel_map(ids, draw));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(RngSplit, IndexedSplitIsConstAndRepeatable) {
  const Rng parent(5);
  Rng a = parent.split(7);
  Rng b = parent.split(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(RngSplit, DistinctIdsYieldDistinctStreams) {
  const Rng parent(5);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  Rng c = parent.split(1ull << 40);
  EXPECT_NE(a(), b());
  EXPECT_NE(a(), c());
  EXPECT_NE(b(), c());
}

TEST(RngSplit, IndexedSplitDoesNotPerturbParent) {
  Rng a(123), b(123);
  (void)a.split(3);
  (void)a.split(9);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace airfinger::common
