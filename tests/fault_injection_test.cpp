// Fault-injection hardening of the streaming ingest path (DESIGN.md §12).
//
// Sweeps every sensor-fault class the FaultInjector models — dropout/gap
// runs, rail-saturation runs, non-finite samples, impulse glitches, stuck
// channels, and wrong-arity frames — through Session and MultiSessionHost
// and locks in the graceful-degradation contract:
//
//   * clean input is bit-identical with the degraded-mode policy on or off
//     (and with the injector constructed but disabled);
//   * every fault class, at multiple rates, is survived deterministically:
//     no crash, no hang, the same events on every replay;
//   * fault bursts quarantine the segmenter and the session re-calibrates
//     and keeps recognizing once the stream recovers;
//   * strict mode turns corrupt samples into typed StreamFaultError, and a
//     faulting session inside a MultiSessionHost is quarantined by the
//     host while sibling sessions' emissions stay bit-identical at any
//     AF_THREADS;
//   * reset() restores a faulted session to exactly a freshly constructed
//     one.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "sensor/fault_injector.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

/// One small trained bundle shared by every test in this file (training
/// dominates the suite's cost; the bundle is immutable so sharing is safe).
const std::shared_ptr<const core::ModelBundle>& trained_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

/// Clean single-gesture recordings used as the substrate for corruption.
const synth::Dataset& probe_corpus() {
  static const synth::Dataset probes = [] {
    synth::CollectionConfig config;
    config.users = 1;
    config.sessions = 1;
    config.repetitions = 1;
    config.kinds = {synth::MotionKind::kCircle, synth::MotionKind::kClick,
                    synth::MotionKind::kScrollUp,
                    synth::MotionKind::kScrollDown};
    config.seed = 404;
    return synth::DatasetBuilder(config).collect();
  }();
  return probes;
}

/// All probes appended into one long recording (more room for faults).
const sensor::MultiChannelTrace& long_probe() {
  static const sensor::MultiChannelTrace trace = [] {
    sensor::MultiChannelTrace out = probe_corpus().samples.front().trace;
    for (std::size_t i = 1; i < probe_corpus().samples.size(); ++i)
      out.append(probe_corpus().samples[i].trace);
    return out;
  }();
  return trace;
}

/// Largest sample value any clean probe reaches — detection thresholds sit
/// above this so the degraded-mode policy is provably inert on clean input.
double clean_ceiling() {
  static const double ceiling = [] {
    double max_abs = 0.0;
    const auto& trace = long_probe();
    for (std::size_t c = 0; c < trace.channel_count(); ++c)
      for (const double x : trace.channel(c))
        max_abs = std::max(max_abs, std::abs(x));
    return max_abs;
  }();
  return ceiling;
}

/// The degraded-mode policy used throughout: a rail just above the clean
/// range, short run limits so injected bursts trigger, quick recovery.
core::FaultPolicy test_policy() {
  core::FaultPolicy policy;
  policy.enabled = true;
  policy.saturation_level = clean_ceiling() + 256.0;
  policy.saturation_run_limit = 8;
  policy.stuck_run_limit = 32;
  policy.recovery_frames = 32;
  return policy;
}

void expect_events_identical(const std::vector<core::GestureEvent>& a,
                             const std::vector<core::GestureEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    // Bit-exact double comparisons: the contract is bit identity.
    EXPECT_EQ(a[e].time_s, b[e].time_s);
    EXPECT_EQ(a[e].gesture, b[e].gesture);
    EXPECT_EQ(a[e].segment_begin, b[e].segment_begin);
    EXPECT_EQ(a[e].segment_end, b[e].segment_end);
    EXPECT_EQ(a[e].scroll.has_value(), b[e].scroll.has_value());
    if (a[e].scroll && b[e].scroll) {
      EXPECT_EQ(a[e].scroll->direction, b[e].scroll->direction);
      EXPECT_EQ(a[e].scroll->velocity_mps, b[e].scroll->velocity_mps);
      EXPECT_EQ(a[e].scroll->duration_s, b[e].scroll->duration_s);
    }
  }
}

std::vector<core::GestureEvent> replay(
    const sensor::MultiChannelTrace& trace, const core::FaultPolicy& policy) {
  core::Session session(trained_bundle(), policy);
  return session.process_trace(trace);
}

// ------------------------------------------------------------- injector

TEST(FaultInjector, SameSeedSameCorruptionSameLog) {
  sensor::FaultInjectorConfig config;
  config.dropout_rate = 0.01;
  config.saturation_rate = 0.01;
  config.non_finite_rate = 0.005;
  config.glitch_rate = 0.01;
  config.stuck_channel_rate = 0.5;

  sensor::FaultInjector a(config, 99);
  sensor::FaultInjector b(config, 99);
  const auto trace_a = a.corrupt(long_probe());
  const auto trace_b = b.corrupt(long_probe());

  ASSERT_FALSE(a.log().empty());
  ASSERT_EQ(a.log().size(), b.log().size());
  for (std::size_t i = 0; i < a.log().size(); ++i) {
    EXPECT_EQ(a.log()[i].kind, b.log()[i].kind);
    EXPECT_EQ(a.log()[i].channel, b.log()[i].channel);
    EXPECT_EQ(a.log()[i].begin, b.log()[i].begin);
    EXPECT_EQ(a.log()[i].end, b.log()[i].end);
  }
  ASSERT_EQ(trace_a.sample_count(), trace_b.sample_count());
  for (std::size_t c = 0; c < trace_a.channel_count(); ++c)
    for (std::size_t i = 0; i < trace_a.sample_count(); ++i) {
      const double x = trace_a.channel(c)[i];
      const double y = trace_b.channel(c)[i];
      // Bitwise comparison (NaN-safe).
      EXPECT_EQ(std::isnan(x), std::isnan(y));
      if (!std::isnan(x)) {
        EXPECT_EQ(x, y);
      }
    }
}

TEST(FaultInjector, AllRatesZeroIsIdentity) {
  sensor::FaultInjector identity(sensor::FaultInjectorConfig{}, 1);
  const auto out = identity.corrupt(long_probe());
  EXPECT_TRUE(identity.log().empty());
  ASSERT_EQ(out.sample_count(), long_probe().sample_count());
  for (std::size_t c = 0; c < out.channel_count(); ++c)
    for (std::size_t i = 0; i < out.sample_count(); ++i)
      EXPECT_EQ(out.channel(c)[i], long_probe().channel(c)[i]);
}

// ------------------------------------------- clean-input bit identity

TEST(FaultInjection, PolicyEnabledIsBitIdenticalOnCleanInput) {
  // The degraded-mode layer must be invisible until a fault actually
  // fires: same events, sample for sample, as the strict default.
  for (const auto& probe : probe_corpus().samples) {
    core::Session strict(trained_bundle());
    core::Session degraded(trained_bundle(), test_policy());
    expect_events_identical(strict.process_trace(probe.trace),
                            degraded.process_trace(probe.trace));
    EXPECT_TRUE(degraded.health().clean());
    EXPECT_FALSE(degraded.quarantined());
    EXPECT_EQ(degraded.health().frames, probe.trace.sample_count());
  }
}

// ------------------------------------------------- per-class sweeps

struct FaultClassCase {
  const char* name;
  sensor::FaultEvent::Kind kind;
  sensor::FaultInjectorConfig config;  ///< Rates filled per sweep rate.
};

std::vector<FaultClassCase> fault_classes(double rate) {
  const double rail = clean_ceiling() + 256.0;
  std::vector<FaultClassCase> cases;
  {
    FaultClassCase c{"dropout", sensor::FaultEvent::Kind::kDropout, {}};
    c.config.dropout_rate = rate;
    c.config.dropout_run = 64;  // > stuck_run_limit: guaranteed detection
    cases.push_back(c);
  }
  {
    FaultClassCase c{"saturation", sensor::FaultEvent::Kind::kSaturation, {}};
    c.config.saturation_rate = rate;
    c.config.saturation_run = 16;  // > saturation_run_limit
    c.config.saturation_level = rail;
    cases.push_back(c);
  }
  {
    FaultClassCase c{"non_finite", sensor::FaultEvent::Kind::kNonFinite, {}};
    c.config.non_finite_rate = rate;
    cases.push_back(c);
  }
  {
    FaultClassCase c{"glitch", sensor::FaultEvent::Kind::kGlitch, {}};
    c.config.glitch_rate = rate;
    // Glitches land beyond the rail no matter the clean value underneath.
    c.config.glitch_magnitude = rail + clean_ceiling();
    cases.push_back(c);
  }
  {
    FaultClassCase c{"stuck", sensor::FaultEvent::Kind::kStuckChannel, {}};
    c.config.stuck_channel_rate = std::min(1.0, rate * 50.0);
    cases.push_back(c);
  }
  return cases;
}

TEST(FaultInjection, EveryFaultClassSurvivedDeterministicallyAtEveryRate) {
  const core::FaultPolicy policy = test_policy();
  for (const double rate : {0.002, 0.02}) {
    for (const auto& fault_class : fault_classes(rate)) {
      SCOPED_TRACE(std::string(fault_class.name) + " at rate " +
                   std::to_string(rate));
      sensor::FaultInjector injector(fault_class.config, 2026);
      const auto corrupted = injector.corrupt(long_probe());

      // Did the seeded storm place at least one instance the detectors are
      // guaranteed to see? (A run truncated at the trace edge can legally
      // stay below the policy's run limit.)
      bool detectable = false;
      for (const auto& f : injector.log()) {
        if (f.kind != fault_class.kind) continue;
        const std::size_t run = f.end - f.begin;
        switch (f.kind) {
          case sensor::FaultEvent::Kind::kDropout:
          case sensor::FaultEvent::Kind::kStuckChannel:
            detectable |= run >= policy.stuck_run_limit;
            break;
          case sensor::FaultEvent::Kind::kSaturation:
            detectable |= run >= policy.saturation_run_limit;
            break;
          default:
            detectable = true;  // point faults are always seen
            break;
        }
      }

      // Degraded mode survives the storm: no exception, bounded time, and
      // a bit-identical replay.
      const auto events = replay(corrupted, policy);
      expect_events_identical(events, replay(corrupted, policy));
      for (const auto& e : events) {
        EXPECT_TRUE(std::isfinite(e.time_s));
        if (e.scroll) {
          EXPECT_TRUE(std::isfinite(e.scroll->velocity_mps));
          EXPECT_TRUE(std::isfinite(e.scroll->duration_s));
        }
      }

      // The health ledger reflects the injected class (when the seeded
      // storm actually placed one).
      core::Session session(trained_bundle(), policy);
      session.process_trace(corrupted);
      const core::HealthStats& health = session.health();
      EXPECT_EQ(health.frames, corrupted.sample_count());
      if (!detectable) continue;
      switch (fault_class.kind) {
        case sensor::FaultEvent::Kind::kDropout:
          EXPECT_GT(health.stuck_samples, 0u);
          EXPECT_GT(health.quarantines, 0u);
          break;
        case sensor::FaultEvent::Kind::kSaturation:
          EXPECT_GT(health.saturated_samples, 0u);
          EXPECT_GT(health.quarantines, 0u);
          break;
        case sensor::FaultEvent::Kind::kNonFinite:
          EXPECT_GT(health.non_finite_samples, 0u);
          EXPECT_GT(health.quarantines, 0u);
          break;
        case sensor::FaultEvent::Kind::kGlitch:
          // Isolated impulses exceed the rail but never a full run: they
          // are counted yet must NOT quarantine the stream.
          EXPECT_GT(health.saturated_samples, 0u);
          EXPECT_EQ(health.quarantines, 0u);
          break;
        case sensor::FaultEvent::Kind::kStuckChannel:
          EXPECT_GT(health.stuck_samples, 0u);
          EXPECT_GT(health.quarantines, 0u);
          break;
        case sensor::FaultEvent::Kind::kChannelMismatch:
        case sensor::FaultEvent::Kind::kCrackle:
        case sensor::FaultEvent::Kind::kStep:
        case sensor::FaultEvent::Kind::kDrift:
        case sensor::FaultEvent::Kind::kFlicker:
          // The graded artifact classes get their own detector-vs-injector
          // sweeps in artifact_test.cpp; the burst heuristics exercised
          // here make no promise about them.
          break;
      }
    }
  }
}

// --------------------------------------------- quarantine & recovery

TEST(FaultInjection, SaturationBurstQuarantinesThenRecalibratesAndRecovers) {
  const core::FaultPolicy policy = test_policy();
  const auto& probe = probe_corpus().samples.front().trace;

  // clean gesture | 120-sample rail plateau | idle | the same gesture.
  // The idle pad after the plateau gives the session room to serve the
  // recovery window (policy.recovery_frames) and re-calibrate before the
  // second gesture arrives — exactly how a real stream would look after a
  // strong-ambient-light episode ends.
  sensor::MultiChannelTrace composite = probe;
  // Near-constant idle with a small dither so the stuck-channel detector
  // (correctly) stays quiet.
  std::vector<double> idle_frame(probe.channel_count(), 0.0);
  const auto push_idle = [&](int count) {
    for (int i = 0; i < count; ++i) {
      for (std::size_t c = 0; c < idle_frame.size(); ++c)
        idle_frame[c] = 300.0 + 0.5 * static_cast<double>((i + c) % 7);
      composite.push_frame(idle_frame);
    }
  };
  // Idle tail so the pre-burst gesture's segment closes before the burst
  // (a segment still open when the burst hits is — correctly — dropped).
  push_idle(150);
  const double rail = policy.saturation_level + 1.0;
  const std::vector<double> rail_frame(probe.channel_count(), rail);
  for (int i = 0; i < 120; ++i) composite.push_frame(rail_frame);
  const std::size_t resume_at = composite.sample_count();
  push_idle(150);
  composite.append(probe);

  core::Session session(trained_bundle(), policy);
  const auto events = session.process_trace(composite);

  const core::HealthStats& health = session.health();
  EXPECT_EQ(health.quarantines, 1u);
  EXPECT_EQ(health.recalibrations, 1u);
  EXPECT_GT(health.saturated_samples, 0u);
  EXPECT_GT(health.quarantined_frames, 0u);
  EXPECT_FALSE(session.quarantined());

  // The pre-burst gesture is still recognized, and after re-calibration
  // the post-burst copy is recognized again.
  const auto clean_events = replay(probe, policy);
  ASSERT_FALSE(clean_events.empty());
  std::size_t before = 0;
  std::size_t after = 0;
  for (const auto& e : events) {
    if (e.segment_end <= resume_at)
      ++before;
    else if (e.segment_begin >= resume_at)
      ++after;
  }
  EXPECT_GE(before, 1u);
  EXPECT_GE(after, 1u);
  EXPECT_EQ(before + after, events.size());

  // No event may straddle the quarantined region, and every post-burst
  // segment must use absolute stream coordinates (the re-based segmenter
  // must not report indices relative to its re-calibration point).
  for (const auto& e : events)
    EXPECT_TRUE(e.segment_end <= resume_at || e.segment_begin >= resume_at);
}

// ----------------------------------------------- strict-mode contract

TEST(FaultInjection, StrictModeRaisesTypedErrorOnNonFiniteSamples) {
  core::Session session(trained_bundle());  // default policy: strict
  const std::size_t channels = session.config().channels;
  const auto sink = [](const core::GestureEvent&) {};

  std::vector<double> frame(channels, 100.0);
  session.push_frame(frame, sink);

  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    frame.assign(channels, 100.0);
    frame[1] = bad;
    try {
      session.push_frame(frame, sink);
      FAIL() << "non-finite sample must throw in strict mode";
    } catch (const StreamFaultError& e) {
      EXPECT_NE(std::string(e.what()).find("channel 1"), std::string::npos);
    }
  }

  // The failed pushes left no trace: the stream continues as if the
  // corrupt frames were never offered.
  EXPECT_EQ(session.frames_seen(), 1u);
  frame.assign(channels, 100.0);
  session.push_frame(frame, sink);
  EXPECT_EQ(session.frames_seen(), 2u);
}

TEST(FaultInjection, WrongArityFrameReportsObservedAndExpectedCounts) {
  core::Session session(trained_bundle());
  const std::size_t channels = session.config().channels;
  const auto sink = [](const core::GestureEvent&) {};

  const std::vector<double> wide(channels + 2, 0.0);
  try {
    session.push_frame(wide, sink);
    FAIL() << "wrong-arity frame must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(channels + 2)), std::string::npos);
    EXPECT_NE(what.find(std::to_string(channels)), std::string::npos);
  }

  sensor::MultiChannelTrace trace(channels, 100.0);
  try {
    trace.push_frame(std::vector<double>(channels - 1, 0.0));
    FAIL() << "wrong-arity frame must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(channels - 1)), std::string::npos);
    EXPECT_NE(what.find(std::to_string(channels)), std::string::npos);
  }
}

TEST(FaultInjection, MismatchedFramesRejectedWithoutCorruptingTheStream) {
  sensor::FaultInjectorConfig config;
  config.channel_mismatch_rate = 0.05;
  sensor::FaultInjector injector(config, 7);
  const auto frames = injector.frames(long_probe());
  ASSERT_FALSE(injector.log().empty());

  std::vector<bool> mismatched(frames.size(), false);
  for (const auto& f : injector.log())
    if (f.kind == sensor::FaultEvent::Kind::kChannelMismatch)
      mismatched[f.begin] = true;

  // Feeding the torture stream: every wrong-arity frame throws, every
  // well-formed frame processes — and the rejected frames must leave no
  // state behind (the stream equals one fed only the well-formed frames).
  core::Session session(trained_bundle(), test_policy());
  std::vector<core::GestureEvent> events;
  const auto sink = [&events](const core::GestureEvent& e) {
    events.push_back(e);
  };
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (mismatched[i]) {
      EXPECT_THROW(session.push_frame(frames[i], sink), PreconditionError);
    } else {
      session.push_frame(frames[i], sink);
    }
  }
  session.finish(sink);

  core::Session reference(trained_bundle(), test_policy());
  std::vector<core::GestureEvent> expected;
  const auto ref_sink = [&expected](const core::GestureEvent& e) {
    expected.push_back(e);
  };
  for (std::size_t i = 0; i < frames.size(); ++i)
    if (!mismatched[i]) reference.push_frame(frames[i], ref_sink);
  reference.finish(ref_sink);

  expect_events_identical(events, expected);
}

// --------------------------------------------------- host isolation

std::vector<sensor::MultiChannelTrace> host_traces_with_corrupt_middle() {
  sensor::FaultInjectorConfig config;
  config.non_finite_rate = 0.01;
  sensor::FaultInjector injector(config, 31337);
  std::vector<sensor::MultiChannelTrace> traces;
  traces.push_back(probe_corpus().samples[0].trace);
  traces.push_back(injector.corrupt(probe_corpus().samples[1].trace));
  traces.push_back(probe_corpus().samples[2].trace);
  // The middle trace must actually carry corruption.
  EXPECT_FALSE(injector.log().empty());
  return traces;
}

TEST(FaultInjection, HostQuarantinesFaultedLaneAndSiblingsAreBitIdentical) {
  const auto traces = host_traces_with_corrupt_middle();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    common::ScopedThreads scoped(threads);

    // Strict sessions: the corrupt lane throws inside pump() and the host
    // must quarantine it without disturbing the siblings.
    core::MultiSessionHost host(trained_bundle(), traces.size());
    const auto hosted = host.run_round_robin(traces, 37);

    EXPECT_TRUE(host.session_faulted(1));
    EXPECT_EQ(host.faulted_count(), 1u);
    EXPECT_NE(host.session_fault(1).find("non-finite"), std::string::npos);
    EXPECT_GT(host.dropped_frames(1), 0u);
    EXPECT_FALSE(host.session_faulted(0));
    EXPECT_FALSE(host.session_faulted(2));

    std::vector<std::vector<core::GestureEvent>> per_session(traces.size());
    for (const auto& e : hosted) per_session[e.session].push_back(e.event);

    for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
      SCOPED_TRACE("sibling " + std::to_string(i));
      core::Session standalone(trained_bundle());
      expect_events_identical(per_session[i],
                              standalone.process_trace(traces[i]));
    }
  }
}

TEST(FaultInjection, HostWithDegradedModePolicySurvivesWithoutFaulting) {
  const auto traces = host_traces_with_corrupt_middle();
  core::MultiSessionHost host(trained_bundle(), traces.size(),
                              test_policy());
  host.run_round_robin(traces, 37);
  EXPECT_EQ(host.faulted_count(), 0u);
  EXPECT_GT(host.aggregate_health().non_finite_samples, 0u);
  EXPECT_EQ(host.aggregate_health().frames,
            traces[0].sample_count() + traces[1].sample_count() +
                traces[2].sample_count());
}

// ------------------------------------------------- reset() property

TEST(FaultInjection, ResetAfterFaultMatchesFreshSessionBitIdentically) {
  const core::FaultPolicy policy = test_policy();
  sensor::FaultInjectorConfig config;
  config.dropout_rate = 0.01;
  config.dropout_run = 64;
  config.non_finite_rate = 0.005;
  sensor::FaultInjector injector(config, 555);
  const auto corrupted = injector.corrupt(long_probe());

  // Degraded mode: drive a session through a mid-trace fault storm, then
  // reset — it must be indistinguishable from a fresh session.
  core::Session recycled(trained_bundle(), policy);
  recycled.process_trace(corrupted);
  EXPECT_FALSE(recycled.health().clean());
  recycled.reset();
  EXPECT_TRUE(recycled.health().clean());

  core::Session fresh(trained_bundle(), policy);
  for (const auto& probe : probe_corpus().samples) {
    expect_events_identical(recycled.process_trace(probe.trace),
                            fresh.process_trace(probe.trace));
    EXPECT_EQ(recycled.health(), fresh.health());
    recycled.reset();
    fresh.reset();
  }

  // Strict mode: a session that threw on a corrupt frame resets to the
  // same clean slate.
  core::Session strict(trained_bundle());
  const std::size_t channels = strict.config().channels;
  const auto sink = [](const core::GestureEvent&) {};
  std::vector<double> frame(channels, 50.0);
  for (int i = 0; i < 40; ++i) {
    frame.assign(channels, 50.0 + i);
    strict.push_frame(frame, sink);
  }
  frame[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(strict.push_frame(frame, sink), StreamFaultError);
  strict.reset();

  core::Session strict_fresh(trained_bundle());
  const auto& probe = probe_corpus().samples.front().trace;
  expect_events_identical(strict.process_trace(probe),
                          strict_fresh.process_trace(probe));
}

}  // namespace
}  // namespace airfinger
