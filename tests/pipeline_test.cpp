// Deeper pipeline tests: recognizer selection modes, ZEBRA proportionality
// and configuration, router thresholds, trainer wiring, and streaming/batch
// segmentation consistency on realistic traces.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "core/type_router.hpp"
#include "core/zebra.hpp"
#include "dsp/dynamic_threshold.hpp"
#include "synth/dataset.hpp"

namespace airfinger::core {
namespace {

synth::Dataset small_dataset(std::vector<synth::MotionKind> kinds,
                             int reps, std::uint64_t seed) {
  synth::CollectionConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = reps;
  config.kinds = std::move(kinds);
  config.seed = seed;
  return synth::DatasetBuilder(config).collect();
}

// -------------------------------------------------- recognizer modes

TEST(RecognizerModes, SingleStageUsesWholeBank) {
  const auto data = small_dataset(
      {synth::MotionKind::kClick, synth::MotionKind::kRub}, 5, 41);
  const DataProcessor proc;
  DetectRecognizerConfig config;
  config.two_stage_selection = false;
  DetectRecognizer rec(config);
  const auto set = build_feature_set(data, proc, rec.bank(),
                                     LabelScheme::kDetectSix);
  rec.fit(set);
  EXPECT_EQ(rec.selected_features().size(), rec.bank().feature_count());
}

TEST(RecognizerModes, TwoStageSelectsRequestedCount) {
  const auto data = small_dataset(
      {synth::MotionKind::kClick, synth::MotionKind::kRub}, 5, 42);
  const DataProcessor proc;
  DetectRecognizerConfig config;
  config.selected_features = 7;
  DetectRecognizer rec(config);
  const auto set = build_feature_set(data, proc, rec.bank(),
                                     LabelScheme::kDetectSix);
  rec.fit(set);
  EXPECT_EQ(rec.selected_features().size(), 7u);
  // Selected indices are unique and in range.
  std::set<std::size_t> unique(rec.selected_features().begin(),
                               rec.selected_features().end());
  EXPECT_EQ(unique.size(), 7u);
  for (std::size_t idx : unique) EXPECT_LT(idx, rec.bank().feature_count());
  // Final importances cover exactly the selected columns.
  EXPECT_EQ(rec.final_importances().size(), 7u);
}

TEST(RecognizerModes, WrongArityRowsRejected) {
  DetectRecognizer rec;
  ml::SampleSet bad;
  bad.features = {{1.0, 2.0}};
  bad.labels = {0};
  EXPECT_THROW(rec.fit(bad), PreconditionError);
}

// -------------------------------------------------- ZEBRA details

ProcessedTrace scroll_like(double dt_fraction) {
  // Three channels with Gaussian humps; dt_fraction shifts P3 vs P1.
  const std::size_t n = 160;
  auto hump = [n](double centre) {
    std::vector<double> x(n, 0.3);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += 300.0 * std::exp(-0.5 * std::pow(
                                   (static_cast<double>(i) - centre) / 9.0,
                                   2.0));
    return x;
  };
  const double mid = static_cast<double>(n) / 2.0;
  const double off = dt_fraction * static_cast<double>(n) / 2.0;
  ProcessedTrace p;
  p.sample_rate_hz = 100.0;
  p.delta_rss2 = {hump(mid - off), hump(mid), hump(mid + off)};
  p.energy.assign(n, 0.0);
  for (const auto& ch : p.delta_rss2)
    for (std::size_t i = 0; i < n; ++i) p.energy[i] += ch[i];
  return p;
}

TEST(ZebraDetails, VelocityInverselyProportionalToDt) {
  const ZebraTracker zebra;
  const auto fast = zebra.track(scroll_like(0.2), {0, 160});
  const auto slow = zebra.track(scroll_like(0.5), {0, 160});
  ASSERT_TRUE(fast && slow);
  ASSERT_TRUE(fast->delta_t_s && slow->delta_t_s);
  EXPECT_LT(*fast->delta_t_s, *slow->delta_t_s);
  // v = gain · span / Δt: the ratio of velocities inverts the Δt ratio.
  EXPECT_NEAR(fast->velocity_mps / slow->velocity_mps,
              *slow->delta_t_s / *fast->delta_t_s, 1e-9);
}

TEST(ZebraDetails, VelocityGainScalesOutput) {
  ZebraConfig doubled;
  doubled.velocity_gain = 2.0;
  const ZebraTracker base, scaled{doubled};
  const auto p = scroll_like(0.4);
  const auto a = base.track(p, {0, 160});
  const auto b = scaled.track(p, {0, 160});
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(b->velocity_mps, 2.0 * a->velocity_mps, 1e-9);
}

TEST(ZebraDetails, InvalidConfigThrows) {
  ZebraConfig bad;
  bad.pd_span_m = 0.0;
  EXPECT_THROW(ZebraTracker{bad}, PreconditionError);
  ZebraConfig bad2;
  bad2.experience_velocity_mps = -1.0;
  EXPECT_THROW(ZebraTracker{bad2}, PreconditionError);
}

TEST(ZebraDetails, SegmentOutOfRangeThrows) {
  const auto p = scroll_like(0.4);
  const ZebraTracker zebra;
  EXPECT_THROW(zebra.track(p, {0, 500}), PreconditionError);
}

// -------------------------------------------------- router thresholds

TEST(RouterThresholds, HigherAsymmetryThresholdRoutesDetect) {
  const auto p = scroll_like(0.35);
  TypeRouterConfig strict;
  strict.asymmetry_threshold = 5.0;  // unreachable: A spans [-1, 1]
  EXPECT_EQ(TypeRouter{strict}.route(p, {0, 160}),
            GestureCategory::kDetectAimed);
  TypeRouterConfig normal;
  EXPECT_EQ(TypeRouter{normal}.route(p, {0, 160}),
            GestureCategory::kTrackAimed);
}

TEST(RouterThresholds, HugeIgRoutesDetect) {
  const auto p = scroll_like(0.35);
  TypeRouterConfig config;
  config.ig_threshold_s = 10.0;  // no gesture transit is that slow
  EXPECT_EQ(TypeRouter{config}.route(p, {0, 160}),
            GestureCategory::kDetectAimed);
}

// -------------------------------------------------- trainer wiring

TEST(Trainer, FilterCanBeDisabled) {
  TrainerConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 3;
  config.seed = 51;
  config.engine.interference_filtering = false;
  AirFinger engine = build_engine(config);
  // Scratch samples are not rejected when filtering is off.
  const auto data = small_dataset({synth::MotionKind::kScratch}, 3, 52);
  for (const auto& s : data.samples) {
    const auto v = run_sample(engine, s);
    EXPECT_FALSE(v.rejected);
  }
}

TEST(Trainer, MissingNonGestureDataThrowsWhenFilterEnabled) {
  synth::Dataset gestures = small_dataset({synth::MotionKind::kClick,
                                           synth::MotionKind::kRub}, 4, 53);
  synth::Dataset empty;
  AirFingerConfig config;
  EXPECT_THROW(build_engine_from(config, gestures, empty),
               PreconditionError);
  config.interference_filtering = false;
  EXPECT_NO_THROW(build_engine_from(config, gestures, empty));
}

// ------------------------------------------ streaming/batch consistency

TEST(SegmenterConsistency, StreamingFindsBatchSegmentsOnRealTraces) {
  const auto data = small_dataset(
      {synth::MotionKind::kClick, synth::MotionKind::kCircle}, 4, 54);
  const DataProcessor proc;
  int batch_total = 0, stream_matched = 0;
  for (const auto& s : data.samples) {
    const auto processed = proc.process(s.trace);

    dsp::SegmenterConfig config = proc.config().segmenter;
    config.sample_rate_hz = s.trace.sample_rate_hz();
    dsp::DynamicThresholdSegmenter stream(config);
    std::vector<dsp::Segment> streamed;
    for (std::size_t i = 0; i < processed.energy.size(); ++i)
      if (const auto seg = stream.push(processed.energy[i]))
        streamed.push_back(*seg);
    if (const auto seg = stream.flush()) streamed.push_back(*seg);

    for (const auto& b : processed.segments) {
      ++batch_total;
      for (const auto& st : streamed) {
        const auto lo = std::max(b.begin, st.begin);
        const auto hi = std::min(b.end, st.end);
        if (hi > lo && (hi - lo) * 2 >= b.length()) {
          ++stream_matched;
          break;
        }
      }
    }
  }
  ASSERT_GT(batch_total, 4);
  // The streaming segmenter sees a causal, growing history rather than the
  // whole trace, so boundaries differ; most gestures must still be found.
  EXPECT_GE(stream_matched * 10, batch_total * 7);
}

}  // namespace
}  // namespace airfinger::core
