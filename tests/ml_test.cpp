// Unit tests for the classifiers, metrics, and split utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/data.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/random_forest.hpp"

namespace airfinger::ml {
namespace {

/// Three Gaussian blobs in 2-D, linearly separable-ish.
SampleSet blobs(std::size_t per_class, double spread, std::uint64_t seed) {
  common::Rng rng(seed);
  SampleSet set;
  const double centres[3][2] = {{0, 0}, {5, 0}, {0, 5}};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      set.features.push_back({centres[c][0] + rng.normal(0, spread),
                              centres[c][1] + rng.normal(0, spread)});
      set.labels.push_back(c);
      set.groups.push_back(static_cast<int>(i % 4));
    }
  }
  return set;
}

double holdout_accuracy(Classifier& clf, const SampleSet& data,
                        std::uint64_t seed) {
  common::Rng rng(seed);
  const Split split = stratified_split(data, 0.3, rng);
  clf.fit(data.subset(split.train));
  int correct = 0;
  for (std::size_t i : split.test)
    if (clf.predict(data.features[i]) == data.labels[i]) ++correct;
  return static_cast<double>(correct) /
         static_cast<double>(split.test.size());
}

// ---------------------------------------------------------------- data

TEST(Data, NumClassesAndValidate) {
  SampleSet s;
  s.features = {{1.0}, {2.0}};
  s.labels = {0, 2};
  EXPECT_EQ(s.num_classes(), 3);
  s.validate();
  s.labels = {0};
  EXPECT_THROW(s.validate(), PreconditionError);
}

TEST(Data, SubsetAndProject) {
  SampleSet s;
  s.features = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  s.labels = {0, 1, 2};
  const std::size_t rows[] = {2, 0};
  const auto sub = s.subset(rows);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels[0], 2);
  EXPECT_DOUBLE_EQ(sub.features[1][0], 1.0);
  const std::size_t cols[] = {2, 0};
  const auto proj = s.project(cols);
  EXPECT_DOUBLE_EQ(proj.features[0][0], 3.0);
  EXPECT_DOUBLE_EQ(proj.features[0][1], 1.0);
}

TEST(Data, StratifiedSplitKeepsProportions) {
  const auto data = blobs(40, 0.5, 1);
  common::Rng rng(2);
  const auto split = stratified_split(data, 0.25, rng);
  EXPECT_EQ(split.test.size(), 30u);   // 10 per class
  EXPECT_EQ(split.train.size(), 90u);
  std::vector<int> class_counts(3, 0);
  for (std::size_t i : split.test) ++class_counts[data.labels[i]];
  for (int c : class_counts) EXPECT_EQ(c, 10);
}

TEST(Data, KfoldPartitionsEverything) {
  const auto data = blobs(20, 0.5, 3);
  common::Rng rng(4);
  const auto folds = stratified_kfold(data, 4, rng);
  ASSERT_EQ(folds.size(), 4u);
  std::set<std::size_t> seen;
  for (const auto& f : folds) {
    for (std::size_t i : f.test) {
      EXPECT_TRUE(seen.insert(i).second);  // each row tested exactly once
    }
    EXPECT_EQ(f.train.size() + f.test.size(), data.size());
  }
  EXPECT_EQ(seen.size(), data.size());
}

TEST(Data, LeaveOneGroupOut) {
  const auto data = blobs(8, 0.5, 5);  // groups 0..3
  const auto splits = leave_one_group_out(data);
  ASSERT_EQ(splits.size(), 4u);
  for (const auto& s : splits) {
    ASSERT_FALSE(s.test.empty());
    const int g = data.groups[s.test.front()];
    for (std::size_t i : s.test) EXPECT_EQ(data.groups[i], g);
    for (std::size_t i : s.train) EXPECT_NE(data.groups[i], g);
  }
}

// ---------------------------------------------------------------- tree

TEST(DecisionTree, GiniBasics) {
  const std::vector<double> pure{10, 0};
  EXPECT_DOUBLE_EQ(gini_impurity(pure, 10), 0.0);
  const std::vector<double> even{5, 5};
  EXPECT_DOUBLE_EQ(gini_impurity(even, 10), 0.5);
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  SampleSet s;
  for (int i = 0; i < 50; ++i) {
    s.features.push_back({static_cast<double>(i)});
    s.labels.push_back(i < 25 ? 0 : 1);
  }
  DecisionTree tree;
  tree.fit(s);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{40.0}), 1);
}

TEST(DecisionTree, LearnsXor) {
  // XOR needs depth 2: not linearly separable.
  SampleSet s;
  common::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    s.features.push_back({a, b});
    s.labels.push_back((a > 0) != (b > 0) ? 1 : 0);
  }
  DecisionTree tree;
  double acc = holdout_accuracy(tree, s, 7);
  EXPECT_GT(acc, 0.9);
}

TEST(DecisionTree, ImportancesSumToOne) {
  const auto data = blobs(30, 0.5, 8);
  DecisionTree tree;
  tree.fit(data);
  double total = 0.0;
  for (double v : tree.feature_importances()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTree, ProbaSumsToOne) {
  const auto data = blobs(30, 1.0, 9);
  DecisionTree tree;
  tree.fit(data);
  const auto p = tree.predict_proba(data.features[0]);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTree, RespectsMaxDepth) {
  DecisionTreeConfig config;
  config.max_depth = 1;
  const auto data = blobs(30, 0.5, 10);
  DecisionTree tree(config);
  tree.fit(data);
  EXPECT_LE(tree.node_count(), 3u);  // root + 2 leaves
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), PreconditionError);
}

// ---------------------------------------------------------------- forest

TEST(RandomForest, SeparatesBlobs) {
  const auto data = blobs(60, 1.0, 11);
  RandomForest forest;
  EXPECT_GT(holdout_accuracy(forest, data, 12), 0.95);
}

TEST(RandomForest, DeterministicForSeed) {
  const auto data = blobs(40, 1.0, 13);
  RandomForestConfig config;
  config.seed = 77;
  RandomForest a(config), b(config);
  a.fit(data);
  b.fit(data);
  for (const auto& row : data.features)
    EXPECT_EQ(a.predict(row), b.predict(row));
}

TEST(RandomForest, ImportancePointsAtInformativeFeature) {
  // Feature 0 informative, feature 1 noise.
  SampleSet s;
  common::Rng rng(14);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-1, 1);
    s.features.push_back({x, rng.uniform(-1, 1)});
    s.labels.push_back(x > 0 ? 1 : 0);
  }
  RandomForest forest;
  forest.fit(s);
  EXPECT_GT(forest.feature_importances()[0],
            forest.feature_importances()[1] * 5.0);
  const auto top = top_k_features(forest, 1);
  EXPECT_EQ(top[0], 0u);
}

TEST(RandomForest, ProbaAveragesTrees) {
  const auto data = blobs(40, 0.8, 15);
  RandomForest forest;
  forest.fit(data);
  const auto p = forest.predict_proba(data.features[0]);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ---------------------------------------------------------------- LR / BNB

TEST(LogisticRegression, SeparatesBlobs) {
  const auto data = blobs(60, 1.0, 16);
  LogisticRegression lr;
  EXPECT_GT(holdout_accuracy(lr, data, 17), 0.93);
}

TEST(LogisticRegression, ProbabilitiesSumToOne) {
  const auto data = blobs(30, 1.0, 18);
  LogisticRegression lr;
  lr.fit(data);
  const auto p = lr.predict_proba(data.features[5]);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BernoulliNaiveBayes, LearnsBinaryPatterns) {
  // Class 0: both features low; class 1: both high.
  SampleSet s;
  common::Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    const bool one = i % 2;
    s.features.push_back({(one ? 5.0 : 1.0) + rng.normal(0, 0.3),
                          (one ? 5.0 : 1.0) + rng.normal(0, 0.3)});
    s.labels.push_back(one ? 1 : 0);
  }
  BernoulliNaiveBayes bnb;
  EXPECT_GT(holdout_accuracy(bnb, s, 20), 0.95);
}

TEST(Classifiers, NamesAreStable) {
  EXPECT_EQ(RandomForest{}.name(), "RF");
  EXPECT_EQ(DecisionTree{}.name(), "DT");
  EXPECT_EQ(LogisticRegression{}.name(), "LR");
  EXPECT_EQ(BernoulliNaiveBayes{}.name(), "BNB");
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, CountsAndAccuracy) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.rate(0, 1), 0.5);
}

TEST(Metrics, MacroAveragesSkipAbsentClasses) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 0);
  // Class 2 never appears as truth.
  EXPECT_DOUBLE_EQ(cm.macro_recall(), 0.5);  // (1.0 + 0.0) / 2
}

TEST(Metrics, MergeAccumulates) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.accuracy(), 1.0);
}

TEST(Metrics, ClassAccuracyOneVsRest) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);  // error involving classes 0 and 1
  cm.add(2, 2);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(2), 1.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 2.0 / 3.0);
}

TEST(Metrics, EvaluateFromVectors) {
  const std::vector<int> truth{0, 1, 1};
  const std::vector<int> pred{0, 1, 0};
  const auto cm = evaluate(truth, pred, 2);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, ToStringContainsClassNames) {
  ConfusionMatrix cm(2, {"cats", "dogs"});
  cm.add(0, 0);
  const auto s = cm.to_string();
  EXPECT_NE(s.find("cats"), std::string::npos);
  EXPECT_NE(s.find("dogs"), std::string::npos);
}

TEST(Metrics, OutOfRangeThrows) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(0, 2), PreconditionError);
  EXPECT_THROW(cm.add(-1, 0), PreconditionError);
}

}  // namespace
}  // namespace airfinger::ml
