// Tests for the ModelBundle / Session split: single-file artifact
// round-trips (bit-identical predictions), legacy two-file loading,
// malformed-input rejection, zero-copy shared ownership of the models,
// and MultiSessionHost event equivalence with standalone sessions.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/airfinger.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

/// One small trained bundle shared by every test in this file (training
/// dominates the suite's cost; the bundle is immutable so sharing is safe).
const std::shared_ptr<const core::ModelBundle>& trained_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

/// Probe recordings the loaded models must agree on, byte for byte.
const synth::Dataset& probe_corpus() {
  static const synth::Dataset probes = [] {
    synth::CollectionConfig config;
    config.users = 1;
    config.sessions = 1;
    config.repetitions = 1;
    config.kinds = {synth::MotionKind::kCircle, synth::MotionKind::kClick,
                    synth::MotionKind::kScrollUp,
                    synth::MotionKind::kScrollDown};
    config.seed = 404;
    return synth::DatasetBuilder(config).collect();
  }();
  return probes;
}

void expect_events_identical(const std::vector<core::GestureEvent>& a,
                             const std::vector<core::GestureEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    // Bit-exact double comparisons: the contract is bit identity.
    EXPECT_EQ(a[e].time_s, b[e].time_s);
    EXPECT_EQ(a[e].gesture, b[e].gesture);
    EXPECT_EQ(a[e].segment_begin, b[e].segment_begin);
    EXPECT_EQ(a[e].segment_end, b[e].segment_end);
    EXPECT_EQ(a[e].scroll.has_value(), b[e].scroll.has_value());
    if (a[e].scroll && b[e].scroll) {
      EXPECT_EQ(a[e].scroll->direction, b[e].scroll->direction);
      EXPECT_EQ(a[e].scroll->velocity_mps, b[e].scroll->velocity_mps);
      EXPECT_EQ(a[e].scroll->duration_s, b[e].scroll->duration_s);
    }
  }
}

TEST(Bundle, RoundTripIsBitIdentical) {
  const auto& original = trained_bundle();

  std::stringstream artifact;
  original->save(artifact);
  const auto loaded = core::ModelBundle::load(artifact);

  // The trained calibration travels with the artifact, exactly.
  EXPECT_EQ(loaded->config().zebra.velocity_gain,
            original->config().zebra.velocity_gain);
  EXPECT_EQ(loaded->config().sample_rate_hz,
            original->config().sample_rate_hz);
  EXPECT_EQ(loaded->config().channels, original->config().channels);
  EXPECT_EQ(loaded->config().interference_filtering,
            original->config().interference_filtering);
  EXPECT_EQ(loaded->recognizer().selected_features(),
            original->recognizer().selected_features());
  ASSERT_TRUE(loaded->filter().has_value());
  EXPECT_EQ(loaded->filter()->feature_indices(),
            original->filter()->feature_indices());

  // Bit-identical predictions over the pinned probe corpus.
  for (const auto& probe : probe_corpus().samples)
    expect_events_identical(original->classify_recording(probe.trace),
                            loaded->classify_recording(probe.trace));

  // Save → load → save is byte-stable (hex-float exactness end to end).
  std::stringstream resaved;
  loaded->save(resaved);
  std::stringstream first;
  original->save(first);
  EXPECT_EQ(first.str(), resaved.str());
}

TEST(Bundle, LegacyTwoFileLoadMatchesBundle) {
  const auto& original = trained_bundle();
  ASSERT_TRUE(original->filter().has_value());

  std::stringstream rec_file, filter_file;
  original->recognizer().save(rec_file);
  original->filter()->save(filter_file);

  // The legacy pair carries no engine config; supply the trained scalars
  // through `base` the way pre-bundle deployments configured the engine.
  const auto loaded =
      core::ModelBundle::load_legacy(rec_file, &filter_file,
                                     original->config());
  for (const auto& probe : probe_corpus().samples)
    expect_events_identical(original->classify_recording(probe.trace),
                            loaded->classify_recording(probe.trace));
}

TEST(Bundle, LegacyLoadWithoutFilterDisablesFiltering) {
  const auto& original = trained_bundle();
  std::stringstream rec_file;
  original->recognizer().save(rec_file);
  const auto loaded = core::ModelBundle::load_legacy(rec_file, nullptr);
  EXPECT_FALSE(loaded->config().interference_filtering);
  EXPECT_FALSE(loaded->filter().has_value());
  // Still a functional engine.
  const auto events =
      loaded->classify_recording(probe_corpus().samples.front().trace);
  for (const auto& e : events)
    EXPECT_NE(e.type, core::GestureEvent::Type::kNonGesture);
}

TEST(Bundle, MalformedHeaderRejected) {
  std::stringstream wrong_tag("not_a_bundle 1\n");
  EXPECT_THROW(core::ModelBundle::load(wrong_tag), PreconditionError);
  std::stringstream bad_version("afbundle 99\n");
  EXPECT_THROW(core::ModelBundle::load(bad_version), PreconditionError);
  std::stringstream empty;
  EXPECT_THROW(core::ModelBundle::load(empty), PreconditionError);
}

TEST(Bundle, TruncatedArtifactRejected) {
  std::stringstream artifact;
  trained_bundle()->save(artifact);
  const std::string full = artifact.str();
  // Cut at several depths: inside the config block, inside the forest,
  // and just before the trailing end tag. Every cut must throw, never
  // yield a silently half-loaded model.
  for (const double fraction : {0.01, 0.1, 0.5, 0.9, 0.999}) {
    SCOPED_TRACE("fraction " + std::to_string(fraction));
    std::stringstream cut(full.substr(
        0, static_cast<std::size_t>(fraction *
                                    static_cast<double>(full.size()))));
    EXPECT_THROW(core::ModelBundle::load(cut), PreconditionError);
  }
}

// Fuzz-style robustness: every corrupted artifact — truncated anywhere or
// bit-flipped anywhere — must be rejected with PreconditionError. Never a
// crash, a hang, a runaway allocation, or a silently half-loaded bundle.
// The integrity footer makes this airtight: load() verifies the payload
// checksum before any model parsing. Seeded and deterministic (~1k cases);
// also exercised under ASan via tools/run_checks.sh.
TEST(Bundle, FuzzedArtifactsAlwaysRejectedNeverCrash) {
  std::stringstream artifact;
  trained_bundle()->save(artifact);
  const std::string full = artifact.str();
  ASSERT_GT(full.size(), 1000u);
  common::Rng rng(0xF00DFACE);

  const auto expect_rejected = [](const std::string& bytes,
                                  const std::string& what) {
    std::stringstream mangled(bytes);
    try {
      const auto bundle = core::ModelBundle::load(mangled);
      ADD_FAILURE() << what << ": corrupted artifact loaded successfully";
    } catch (const PreconditionError&) {
      // The one acceptable outcome.
    } catch (const std::exception& e) {
      ADD_FAILURE() << what << ": wrong exception type: " << e.what();
    }
  };

  // Random truncations, including length 0 and cuts inside the footer.
  for (int c = 0; c < 512; ++c) {
    const auto cut = static_cast<std::size_t>(rng.below(full.size()));
    expect_rejected(full.substr(0, cut),
                    "truncation at " + std::to_string(cut));
  }

  // Random bit flips (1–8 per case) anywhere in the artifact.
  for (int c = 0; c < 512; ++c) {
    std::string mangled = full;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(rng.below(mangled.size()));
      mangled[at] = static_cast<char>(
          static_cast<unsigned char>(mangled[at]) ^
          (1u << static_cast<unsigned>(rng.below(8))));
    }
    if (mangled == full) continue;  // flips cancelled each other out
    expect_rejected(mangled, "bit flips, case " + std::to_string(c));
  }
}

TEST(Bundle, SniffDistinguishesFormatsAndRestoresStream) {
  std::stringstream artifact;
  trained_bundle()->save(artifact);
  EXPECT_TRUE(core::ModelBundle::sniff_bundle(artifact));
  // The sniff must not consume the stream: a full load still works.
  EXPECT_NO_THROW(core::ModelBundle::load(artifact));

  std::stringstream legacy;
  trained_bundle()->recognizer().save(legacy);
  EXPECT_FALSE(core::ModelBundle::sniff_bundle(legacy));
  EXPECT_NO_THROW(core::DetectRecognizer::load(legacy));
}

TEST(Session, ConstructionSharesModelsWithoutCopying) {
  const auto& bundle = trained_bundle();
  const long count_before = bundle.use_count();

  core::Session a(bundle);
  core::Session b(bundle);

  // Shared ownership, not copies: both sessions reference the same bundle
  // object, and the forests live at the same addresses.
  EXPECT_EQ(bundle.use_count(), count_before + 2);
  EXPECT_EQ(&a.bundle(), bundle.get());
  EXPECT_EQ(&b.bundle(), bundle.get());
  EXPECT_EQ(&a.bundle().recognizer(), &bundle->recognizer());
  EXPECT_EQ(&b.bundle().recognizer(), &a.bundle().recognizer());
  ASSERT_TRUE(a.bundle().filter().has_value());
  EXPECT_EQ(&*a.bundle().filter(), &*bundle->filter());

  // The AirFinger façade shares the same way.
  core::AirFinger engine(bundle);
  EXPECT_EQ(engine.bundle().get(), bundle.get());
  EXPECT_EQ(bundle.use_count(), count_before + 3);
}

TEST(Session, IndependentSessionsMatchSerialReplay) {
  const auto& bundle = trained_bundle();
  const auto& probes = probe_corpus();

  // Replaying through one reused engine (reset between traces) and through
  // fresh per-trace sessions must agree event for event.
  core::AirFinger engine(bundle);
  for (const auto& probe : probes.samples) {
    engine.reset();
    std::vector<core::GestureEvent> via_engine =
        engine.process_trace(probe.trace);
    core::Session fresh(bundle);
    expect_events_identical(via_engine, fresh.process_trace(probe.trace));
  }
}

TEST(MultiSessionHost, MatchesStandaloneSessions) {
  const auto& bundle = trained_bundle();
  const auto& probes = probe_corpus();

  std::vector<sensor::MultiChannelTrace> traces;
  for (const auto& probe : probes.samples) traces.push_back(probe.trace);

  core::MultiSessionHost host(bundle, traces.size());
  const auto hosted = host.run_round_robin(traces, 37);

  // Split the host's event stream back per session and compare with a
  // standalone Session replay of the same trace.
  std::vector<std::vector<core::GestureEvent>> per_session(traces.size());
  std::size_t last_session = 0;
  for (const auto& e : hosted) {
    ASSERT_LT(e.session, traces.size());
    // drain() order: session-major.
    ASSERT_GE(e.session, last_session);
    last_session = e.session;
    per_session[e.session].push_back(e.event);
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    core::Session standalone(bundle);
    expect_events_identical(per_session[i],
                            standalone.process_trace(traces[i]));
  }
  EXPECT_EQ(host.frames_processed(),
            [&] {
              std::uint64_t total = 0;
              for (const auto& t : traces) total += t.sample_count();
              return total;
            }());
}

TEST(MultiSessionHost, ValidatesInput) {
  const auto& bundle = trained_bundle();
  EXPECT_THROW(core::MultiSessionHost(nullptr, 2), PreconditionError);
  EXPECT_THROW(core::MultiSessionHost(bundle, 0), PreconditionError);
  core::MultiSessionHost host(bundle, 2);
  const std::vector<double> bad_frame(bundle->config().channels + 1, 0.0);
  EXPECT_THROW(host.feed(0, bad_frame), PreconditionError);
  EXPECT_THROW(host.feed(5, std::vector<double>(3, 0.0)),
               PreconditionError);
  EXPECT_THROW(host.run_round_robin({}), PreconditionError);
}

}  // namespace
}  // namespace airfinger
