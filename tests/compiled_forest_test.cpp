// Locks the bit-identity invariants of the inference hot path (DESIGN.md
// §11): the compiled SoA forest must predict exactly what the reference
// tree walk predicts, a reused extraction workspace must change nothing,
// and the incremental open-segment timing cache must reproduce the batch
// analysis bit for bit.
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "core/ascending.hpp"
#include "core/timing_cache.hpp"
#include "features/bank.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace {

using namespace airfinger;

// Exact bit equality: the invariant is "same bits", not "close".
void expect_bits(double a, double b, const char* what) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

ml::SampleSet make_training_set(std::size_t rows, std::size_t cols,
                                int classes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  ml::SampleSet set;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(cols);
    for (auto& v : row) v = value(rng);
    // Label correlates with a feature sum so the trees learn real splits.
    double s = 0.0;
    for (std::size_t c = 0; c < cols; c += 2) s += row[c];
    const int label =
        std::min(classes - 1,
                 std::max(0, static_cast<int>(s + classes / 2.0)));
    set.features.push_back(std::move(row));
    set.labels.push_back(label);
  }
  // Make sure every class appears at least once.
  for (int k = 0; k < classes; ++k) set.labels[static_cast<std::size_t>(k)] = k;
  return set;
}

TEST(CompiledForest, BitIdenticalToReferenceForest) {
  constexpr std::size_t kCols = 12;
  ml::RandomForestConfig config;
  config.num_trees = 20;
  config.seed = 99;
  ml::RandomForest forest(config);
  forest.fit(make_training_set(160, kCols, 4, 7));
  const ml::CompiledForest compiled(forest);
  ASSERT_TRUE(compiled.compiled());
  ASSERT_EQ(compiled.tree_count(), config.num_trees);

  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> value(-3.0, 3.0);
  std::vector<double> x(kCols);
  std::vector<double> proba_into(compiled.num_classes());
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& v : x) v = value(rng);
    const std::vector<double> ref = forest.predict_proba(x);
    ASSERT_EQ(ref.size(), compiled.num_classes());
    const std::vector<double> got = compiled.predict_proba(x);
    compiled.predict_proba_into(x, proba_into);
    for (std::size_t c = 0; c < ref.size(); ++c) {
      expect_bits(ref[c], got[c], "predict_proba");
      expect_bits(ref[c], proba_into[c], "predict_proba_into");
    }
    EXPECT_EQ(forest.predict(x), compiled.predict(x));
  }
}

TEST(CompiledForest, ForestIntoOverloadMatchesAllocatingPath) {
  constexpr std::size_t kCols = 6;
  ml::RandomForestConfig config;
  config.num_trees = 8;
  config.seed = 4242;
  ml::RandomForest forest(config);
  forest.fit(make_training_set(80, kCols, 3, 21));

  std::mt19937_64 rng(55);
  std::uniform_real_distribution<double> value(-3.0, 3.0);
  std::vector<double> x(kCols);
  std::vector<double> out(forest.num_classes());
  for (int trial = 0; trial < 200; ++trial) {
    for (auto& v : x) v = value(rng);
    const std::vector<double> ref = forest.predict_proba(x);
    forest.predict_proba_into(x, out);
    ASSERT_EQ(ref.size(), out.size());
    for (std::size_t c = 0; c < ref.size(); ++c)
      expect_bits(ref[c], out[c], "forest predict_proba_into");
  }
}

// A reused workspace arena (the per-session steady state) must leave no
// trace: repeated extract_into over different windows matches a fresh
// allocating extract() exactly, bit for bit.
TEST(WorkspaceReuse, RepeatedExtractIntoMatchesFreshExtract) {
  const features::FeatureBank bank;
  features::Workspace workspace;
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> value(0.0, 5.0);

  std::vector<double> out(bank.feature_count());
  for (int trial = 0; trial < 8; ++trial) {
    // Varying window lengths exercise arena frames of different sizes, so
    // later (smaller) extractions reuse blocks sized by earlier ones.
    const std::size_t n = 24 + static_cast<std::size_t>(trial) * 17;
    std::vector<std::vector<double>> channels(3, std::vector<double>(n));
    for (auto& ch : channels)
      for (auto& v : ch) v = value(rng);
    std::vector<std::span<const double>> windows(channels.begin(),
                                                 channels.end());
    const std::span<const std::span<const double>> span_windows(windows);

    const std::vector<double> fresh = bank.extract(span_windows);
    bank.extract_into(span_windows, workspace, out);
    ASSERT_EQ(fresh.size(), out.size());
    for (std::size_t i = 0; i < fresh.size(); ++i)
      expect_bits(fresh[i], out[i], bank.names()[i].c_str());

    // Second pass over the same window with the warm workspace.
    bank.extract_into(span_windows, workspace, out);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      expect_bits(fresh[i], out[i], bank.names()[i].c_str());
  }
}

void expect_timing_equal(const core::SegmentTiming& a,
                         const core::SegmentTiming& b, std::size_t n) {
  SCOPED_TRACE("window length " + std::to_string(n));
  ASSERT_EQ(a.active.size(), b.active.size());
  for (std::size_t c = 0; c < a.active.size(); ++c) {
    EXPECT_EQ(a.active[c], b.active[c]);
    expect_bits(a.tau_s[c], b.tau_s[c], "tau_s");
  }
  EXPECT_EQ(a.first_active, b.first_active);
  EXPECT_EQ(a.last_active, b.last_active);
  expect_bits(a.dt_outer_s, b.dt_outer_s, "dt_outer_s");
  EXPECT_EQ(a.envelope_peaks, b.envelope_peaks);
  expect_bits(a.asymmetry_start, b.asymmetry_start, "asymmetry_start");
  expect_bits(a.asymmetry_end, b.asymmetry_end, "asymmetry_end");
  expect_bits(a.asymmetry_delta, b.asymmetry_delta, "asymmetry_delta");
  expect_bits(a.transition_s, b.transition_s, "transition_s");
  expect_bits(a.asymmetry_range, b.asymmetry_range, "asymmetry_range");
  EXPECT_EQ(a.asymmetry_reversals, b.asymmetry_reversals);
}

// The incremental open-segment cache must reproduce the batch
// segment_timing() bit for bit at every prefix length, across several
// signal shapes (sequential humps like a scroll, overlapping humps like a
// click, and plain noise).
TEST(OpenSegmentTiming, IncrementalMatchesBatchAtEveryLength) {
  constexpr std::size_t kChannels = 3;
  constexpr double kRate = 100.0;
  const core::TimingConfig config;

  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> noise(0.0, 0.35);
  for (int shape = 0; shape < 3; ++shape) {
    const std::size_t total = 140 + static_cast<std::size_t>(shape) * 23;
    std::vector<std::vector<double>> channels(kChannels,
                                              std::vector<double>(total));
    for (std::size_t c = 0; c < kChannels; ++c) {
      const double centre =
          shape == 0 ? (0.25 + 0.25 * static_cast<double>(c)) *
                           static_cast<double>(total)  // sequential (scroll)
          : shape == 1 ? 0.5 * static_cast<double>(total)  // common (click)
                       : -100.0;                           // noise only
      for (std::size_t i = 0; i < total; ++i) {
        const double d = (static_cast<double>(i) - centre) / 9.0;
        channels[c][i] = 40.0 * std::exp(-0.5 * d * d) + noise(rng);
      }
    }

    core::OpenSegmentTiming cache;
    cache.configure(kChannels, kRate, config);
    cache.begin_segment();
    common::ScratchArena cache_arena;
    common::ScratchArena batch_arena;
    double frame[kChannels];
    std::vector<std::span<const double>> windows(kChannels);
    for (std::size_t n = 1; n <= total; ++n) {
      for (std::size_t c = 0; c < kChannels; ++c) frame[c] = channels[c][n - 1];
      cache.append({frame, kChannels});
      // Probe at several prefix lengths, including consecutive ones (the
      // streaming cadence) and after skipped appends (lazy advance).
      if (n % 7 != 0 && n != total) continue;
      for (std::size_t c = 0; c < kChannels; ++c)
        windows[c] = std::span<const double>(channels[c].data(), n);
      const std::span<const std::span<const double>> w(windows);
      const auto incremental = cache.timing(w, cache_arena);
      const auto batch = core::segment_timing(w, kRate, config, batch_arena);
      expect_timing_equal(incremental, batch, n);
    }
  }
}

}  // namespace
