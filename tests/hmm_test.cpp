// Tests for the discrete HMM and the per-class HMM classifier.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/hmm.hpp"

namespace airfinger::ml {
namespace {

std::vector<double> wave(std::size_t n, double cycles, double phase,
                         double offset = 1.5) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = (std::sin(2.0 * std::numbers::pi * cycles * i / n + phase) +
            offset) *
           20.0;
  return x;
}

TEST(Hmm, LikelihoodImprovesWithTraining) {
  // Sequences that mostly emit symbol 0 then symbol 3.
  std::vector<std::vector<std::size_t>> sequences;
  common::Rng rng(1);
  for (int s = 0; s < 20; ++s) {
    std::vector<std::size_t> seq;
    for (int i = 0; i < 15; ++i) seq.push_back(rng.bernoulli(0.1) ? 1 : 0);
    for (int i = 0; i < 15; ++i) seq.push_back(rng.bernoulli(0.1) ? 2 : 3);
    sequences.push_back(seq);
  }
  DiscreteHmm model(4, 4, 7);
  const double before = model.log_likelihood(sequences[0]);
  model.train(sequences, 15, 1e-3);
  const double after = model.log_likelihood(sequences[0]);
  EXPECT_GT(after, before + 1.0);
}

TEST(Hmm, TrainedModelPrefersItsOwnPattern) {
  std::vector<std::vector<std::size_t>> rising, falling;
  for (int s = 0; s < 15; ++s) {
    rising.push_back({0, 0, 1, 1, 2, 2, 3, 3});
    falling.push_back({3, 3, 2, 2, 1, 1, 0, 0});
  }
  DiscreteHmm up(4, 4, 1), down(4, 4, 2);
  up.train(rising, 20, 1e-3);
  down.train(falling, 20, 1e-3);
  const std::vector<std::size_t> probe_up{0, 0, 1, 2, 2, 3, 3, 3};
  EXPECT_GT(up.log_likelihood(probe_up), down.log_likelihood(probe_up));
}

TEST(Hmm, ClassifierSeparatesWaveformFamilies) {
  common::Rng rng(3);
  std::vector<std::vector<double>> series;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    series.push_back(wave(60 + rng.below(20), 1.0, rng.uniform(0, 0.5)));
    labels.push_back(0);
    series.push_back(wave(60 + rng.below(20), 4.0, rng.uniform(0, 0.5)));
    labels.push_back(1);
  }
  HmmClassifier hmm;
  hmm.fit(series, labels);
  EXPECT_EQ(hmm.num_classes(), 2);
  common::Rng test_rng(4);
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    const int label = i % 2;
    const auto q =
        wave(70, label == 0 ? 1.0 : 4.0, test_rng.uniform(0, 0.5));
    if (hmm.predict(q) == label) ++correct;
  }
  EXPECT_GE(correct, 17);
}

TEST(Hmm, PreconditionsEnforced) {
  EXPECT_THROW(DiscreteHmm(1, 4, 0), PreconditionError);
  EXPECT_THROW(DiscreteHmm(4, 1, 0), PreconditionError);
  HmmClassifier hmm;
  EXPECT_THROW(hmm.predict(wave(30, 1.0, 0.0)), PreconditionError);
  EXPECT_THROW(hmm.fit({}, {}), PreconditionError);
}

}  // namespace
}  // namespace airfinger::ml
