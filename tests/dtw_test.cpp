// Tests for the DTW distance and 1-NN sequence classifier.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/dtw.hpp"

namespace airfinger::ml {
namespace {

std::vector<double> sine(std::size_t n, double cycles, double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * cycles * i / n + phase);
  return x;
}

TEST(Dtw, IdenticalSequencesHaveZeroDistance) {
  const auto a = sine(50, 2.0);
  EXPECT_NEAR(dtw_distance(a, a, 50), 0.0, 1e-12);
}

TEST(Dtw, SymmetricDistance) {
  const auto a = sine(40, 1.0), b = sine(40, 3.0);
  EXPECT_NEAR(dtw_distance(a, b, 40), dtw_distance(b, a, 40), 1e-9);
}

TEST(Dtw, WarpingAbsorbsTimeShift) {
  // A small phase shift costs far less under DTW than under Euclidean.
  const auto a = sine(60, 2.0);
  const auto b = sine(60, 2.0, 0.4);
  double euclid = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    euclid += (a[i] - b[i]) * (a[i] - b[i]);
  euclid = std::sqrt(euclid);
  EXPECT_LT(dtw_distance(a, b, 10), 0.4 * euclid);
}

TEST(Dtw, DifferentShapesAreFarApart) {
  const auto slow = sine(60, 1.0);
  const auto fast = sine(60, 6.0);
  const auto shifted = sine(60, 1.0, 0.3);
  EXPECT_GT(dtw_distance(slow, fast, 10),
            5.0 * dtw_distance(slow, shifted, 10));
}

TEST(Dtw, HandlesUnequalLengths) {
  const auto a = sine(40, 2.0);
  const auto b = sine(80, 2.0);
  EXPECT_LT(dtw_distance(a, b, 12), 1.5);  // same shape, resampled by warp
}

TEST(Dtw, ClassifierSeparatesWaveformFamilies) {
  common::Rng rng(1);
  std::vector<std::vector<double>> series;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    const double jitter = rng.uniform(-0.3, 0.3);
    auto slow = sine(70 + static_cast<int>(rng.below(20)), 1.0, jitter);
    auto fast = sine(70 + static_cast<int>(rng.below(20)), 4.0, jitter);
    for (auto& v : slow) v = (v + 1.2) * 10.0;  // positive "energy"
    for (auto& v : fast) v = (v + 1.2) * 10.0;
    series.push_back(slow);
    labels.push_back(0);
    series.push_back(fast);
    labels.push_back(1);
  }
  DtwClassifier dtw;
  dtw.fit(series, labels);
  common::Rng test_rng(2);
  int correct = 0;
  for (int i = 0; i < 30; ++i) {
    const int label = i % 2;
    auto q = sine(75, label == 0 ? 1.0 : 4.0, test_rng.uniform(-0.3, 0.3));
    for (auto& v : q) v = (v + 1.2) * 10.0;
    if (dtw.predict(q) == label) ++correct;
  }
  EXPECT_GT(correct, 27);
}

TEST(Dtw, TemplateCapIsRespected) {
  DtwClassifierConfig config;
  config.max_templates_per_class = 3;
  DtwClassifier dtw(config);
  std::vector<std::vector<double>> series(20, sine(30, 2.0));
  std::vector<int> labels(20, 0);
  dtw.fit(series, labels);
  EXPECT_EQ(dtw.template_count(), 3u);
}

TEST(Dtw, PreconditionsEnforced) {
  DtwClassifier dtw;
  EXPECT_THROW(dtw.predict(sine(30, 1.0)), PreconditionError);
  EXPECT_THROW(dtw.fit({}, {}), PreconditionError);
  const std::vector<double> empty;
  const auto a = sine(10, 1.0);
  EXPECT_THROW(dtw_distance(a, empty, 5), PreconditionError);
}

}  // namespace
}  // namespace airfinger::ml
