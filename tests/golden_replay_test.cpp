// Golden end-to-end regression traces (DESIGN.md §12).
//
// `tests/golden/` holds committed multi-channel recordings (`.aftrace`)
// with the exact GestureEvent sequence the engine emitted for them when
// they were recorded (`.afevents`). This test replays each committed trace
// through the full streaming path (Session::process_trace over the seeded
// reference bundle) and diffs the emitted events against the committed
// expectation text byte-for-byte — any behavioural drift anywhere in the
// pipeline (SBC, segmenter, feature bank, forests, routing, ZEBRA) shows
// up as an exact textual diff.
//
// Both file formats are line-oriented text with hex-float (`%a`) numbers,
// so round-trips are bit-exact and diffs are reviewable.
//
// To regenerate after an intentional behaviour change:
//   AF_REGEN_GOLDEN=1 ./golden_replay_test
// then commit the rewritten files under tests/golden/.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/session.hpp"
#include "core/trainer.hpp"
#include "sensor/trace_io.hpp"
#include "synth/dataset.hpp"

#ifndef AF_GOLDEN_DIR
#define AF_GOLDEN_DIR "tests/golden"
#endif

namespace airfinger {
namespace {

/// The reference bundle every golden expectation was recorded against.
const std::shared_ptr<const core::ModelBundle>& golden_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

struct GoldenCase {
  const char* name;            ///< Base filename under tests/golden/.
  synth::MotionKind kind;      ///< Motion synthesized on regeneration.
};

const GoldenCase kCases[] = {
    {"circle", synth::MotionKind::kCircle},
    {"click", synth::MotionKind::kClick},
    {"scroll_up", synth::MotionKind::kScrollUp},
    {"scroll_down", synth::MotionKind::kScrollDown},
};

std::string hex(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

double parse_hex(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AF_EXPECT(end != token.c_str() && *end == '\0',
            "golden file: malformed number '" + token + "'");
  return v;
}

// Trace (de)serialization lives in sensor/trace_io.hpp (shared with
// af_inspect --stats); this file keeps only the event text format.

// ------------------------------------------------ event serialization

/// One event per line; every numeric field is either an integer or a
/// hex-float, so equality of the serialized text is bit-equality of the
/// event stream.
std::string serialize_events(const std::vector<core::GestureEvent>& events) {
  std::ostringstream os;
  os << "afevents 1\n";
  os << "events " << events.size() << "\n";
  for (const auto& e : events) {
    os << "type " << static_cast<int>(e.type);
    os << " time " << hex(e.time_s);
    os << " segment " << e.segment_begin << ' ' << e.segment_end;
    os << " gesture ";
    if (e.gesture)
      os << static_cast<int>(*e.gesture);
    else
      os << '-';
    os << " scroll ";
    if (e.scroll) {
      os << hex(e.scroll->direction) << ' ' << hex(e.scroll->velocity_mps)
         << ' ' << hex(e.scroll->duration_s) << ' '
         << (e.scroll->used_experience_velocity ? 1 : 0) << ' ';
      if (e.scroll->delta_t_s)
        os << hex(*e.scroll->delta_t_s);
      else
        os << '-';
    } else {
      os << '-';
    }
    os << "\n";
  }
  return os.str();
}

// ------------------------------------------------------------ file I/O

std::string golden_path(const std::string& name, const char* ext) {
  return std::string(AF_GOLDEN_DIR) + "/" + name + ext;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AF_EXPECT(is.good(), "cannot open golden file " + path +
                           " (run AF_REGEN_GOLDEN=1 ./golden_replay_test "
                           "to record it)");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  AF_EXPECT(os.good(), "cannot write golden file " + path);
  os << bytes;
  AF_EXPECT(os.good(), "short write to golden file " + path);
}

bool regen_requested() {
  const char* flag = std::getenv("AF_REGEN_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

/// Synthesizes the golden recordings: one repetition of each case's motion
/// from a dedicated seed (distinct from any training/test corpus seed).
std::vector<sensor::MultiChannelTrace> synthesize_golden_traces() {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.kinds.clear();
  for (const auto& c : kCases) config.kinds.push_back(c.kind);
  config.seed = 777;
  const synth::Dataset dataset = synth::DatasetBuilder(config).collect();

  std::vector<sensor::MultiChannelTrace> traces(std::size(kCases));
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    bool found = false;
    for (const auto& sample : dataset.samples) {
      if (sample.kind != kCases[i].kind) continue;
      traces[i] = sample.trace;
      found = true;
      break;
    }
    AF_ASSERT(found, "dataset missing a golden motion kind");
  }
  return traces;
}

// ---------------------------------------------------------------- tests

TEST(GoldenReplay, CommittedTracesReplayToCommittedEventsExactly) {
  if (regen_requested()) {
    const auto traces = synthesize_golden_traces();
    for (std::size_t i = 0; i < std::size(kCases); ++i) {
      core::Session session(golden_bundle());
      const auto events = session.process_trace(traces[i]);
      spill(golden_path(kCases[i].name, ".aftrace"),
            sensor::serialize_trace(traces[i]));
      spill(golden_path(kCases[i].name, ".afevents"),
            serialize_events(events));
    }
    GTEST_SKIP() << "golden files regenerated; re-run without "
                    "AF_REGEN_GOLDEN to verify";
  }

  for (const auto& golden : kCases) {
    SCOPED_TRACE(golden.name);
    std::istringstream trace_stream(
        slurp(golden_path(golden.name, ".aftrace")));
    const sensor::MultiChannelTrace trace = sensor::parse_trace(trace_stream);
    ASSERT_GT(trace.sample_count(), 0u);

    core::Session session(golden_bundle());
    const auto events = session.process_trace(trace);
    // Exact textual diff: any drift in the replayed stream shows as a
    // line-level difference against the committed expectation.
    EXPECT_EQ(serialize_events(events),
              slurp(golden_path(golden.name, ".afevents")));
  }
}

TEST(GoldenReplay, TraceSerializationRoundTripsBitExactly) {
  const auto traces = synthesize_golden_traces();
  for (const auto& trace : traces) {
    const std::string bytes = sensor::serialize_trace(trace);
    std::istringstream is(bytes);
    const sensor::MultiChannelTrace back = sensor::parse_trace(is);
    ASSERT_EQ(back.channel_count(), trace.channel_count());
    ASSERT_EQ(back.sample_count(), trace.sample_count());
    EXPECT_EQ(back.sample_rate_hz(), trace.sample_rate_hz());
    for (std::size_t c = 0; c < trace.channel_count(); ++c)
      for (std::size_t i = 0; i < trace.sample_count(); ++i)
        EXPECT_EQ(back.channel(c)[i], trace.channel(c)[i]);
    EXPECT_EQ(sensor::serialize_trace(back), bytes);
  }
}

}  // namespace
}  // namespace airfinger
