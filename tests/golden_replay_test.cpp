// Golden end-to-end regression traces (DESIGN.md §12).
//
// `tests/golden/` holds committed multi-channel recordings (`.aftrace`)
// with the exact GestureEvent sequence the engine emitted for them when
// they were recorded (`.afevents`). This test replays each committed trace
// through the full streaming path (Session::process_trace over the seeded
// reference bundle) and diffs the emitted events against the committed
// expectation text byte-for-byte — any behavioural drift anywhere in the
// pipeline (SBC, segmenter, feature bank, forests, routing, ZEBRA) shows
// up as an exact textual diff.
//
// Both file formats are line-oriented text with hex-float (`%a`) numbers,
// so round-trips are bit-exact and diffs are reviewable.
//
// To regenerate after an intentional behaviour change:
//   AF_REGEN_GOLDEN=1 ./golden_replay_test
// then commit the rewritten files under tests/golden/.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/session.hpp"
#include "core/trainer.hpp"
#include "sensor/artifact.hpp"
#include "sensor/fault_injector.hpp"
#include "sensor/trace_io.hpp"
#include "synth/dataset.hpp"

#ifndef AF_GOLDEN_DIR
#define AF_GOLDEN_DIR "tests/golden"
#endif

namespace airfinger {
namespace {

/// The reference bundle every golden expectation was recorded against.
const std::shared_ptr<const core::ModelBundle>& golden_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

struct GoldenCase {
  const char* name;            ///< Base filename under tests/golden/.
  synth::MotionKind kind;      ///< Motion synthesized on regeneration.
};

const GoldenCase kCases[] = {
    {"circle", synth::MotionKind::kCircle},
    {"click", synth::MotionKind::kClick},
    {"scroll_up", synth::MotionKind::kScrollUp},
    {"scroll_down", synth::MotionKind::kScrollDown},
};

std::string hex(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

double parse_hex(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  AF_EXPECT(end != token.c_str() && *end == '\0',
            "golden file: malformed number '" + token + "'");
  return v;
}

// Trace (de)serialization lives in sensor/trace_io.hpp (shared with
// af_inspect --stats); this file keeps only the event text format.

// ------------------------------------------------ event serialization

/// One event per line; every numeric field is either an integer or a
/// hex-float, so equality of the serialized text is bit-equality of the
/// event stream.
std::string serialize_events(const std::vector<core::GestureEvent>& events) {
  std::ostringstream os;
  os << "afevents 1\n";
  os << "events " << events.size() << "\n";
  for (const auto& e : events) {
    os << "type " << static_cast<int>(e.type);
    os << " time " << hex(e.time_s);
    os << " segment " << e.segment_begin << ' ' << e.segment_end;
    os << " gesture ";
    if (e.gesture)
      os << static_cast<int>(*e.gesture);
    else
      os << '-';
    os << " scroll ";
    if (e.scroll) {
      os << hex(e.scroll->direction) << ' ' << hex(e.scroll->velocity_mps)
         << ' ' << hex(e.scroll->duration_s) << ' '
         << (e.scroll->used_experience_velocity ? 1 : 0) << ' ';
      if (e.scroll->delta_t_s)
        os << hex(*e.scroll->delta_t_s);
      else
        os << '-';
    } else {
      os << '-';
    }
    os << "\n";
  }
  return os.str();
}

// ------------------------------------------------------------ file I/O

std::string golden_path(const std::string& name, const char* ext) {
  return std::string(AF_GOLDEN_DIR) + "/" + name + ext;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AF_EXPECT(is.good(), "cannot open golden file " + path +
                           " (run AF_REGEN_GOLDEN=1 ./golden_replay_test "
                           "to record it)");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  AF_EXPECT(os.good(), "cannot write golden file " + path);
  os << bytes;
  AF_EXPECT(os.good(), "short write to golden file " + path);
}

bool regen_requested() {
  const char* flag = std::getenv("AF_REGEN_GOLDEN");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

/// Synthesizes the golden recordings: one repetition of each case's motion
/// from a dedicated seed (distinct from any training/test corpus seed).
std::vector<sensor::MultiChannelTrace> synthesize_golden_traces() {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.kinds.clear();
  for (const auto& c : kCases) config.kinds.push_back(c.kind);
  config.seed = 777;
  const synth::Dataset dataset = synth::DatasetBuilder(config).collect();

  std::vector<sensor::MultiChannelTrace> traces(std::size(kCases));
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    bool found = false;
    for (const auto& sample : dataset.samples) {
      if (sample.kind != kCases[i].kind) continue;
      traces[i] = sample.trace;
      found = true;
      break;
    }
    AF_ASSERT(found, "dataset missing a golden motion kind");
  }
  return traces;
}

// ---------------------------------------------------------------- tests

TEST(GoldenReplay, CommittedTracesReplayToCommittedEventsExactly) {
  if (regen_requested()) {
    const auto traces = synthesize_golden_traces();
    for (std::size_t i = 0; i < std::size(kCases); ++i) {
      core::Session session(golden_bundle());
      const auto events = session.process_trace(traces[i]);
      spill(golden_path(kCases[i].name, ".aftrace"),
            sensor::serialize_trace(traces[i]));
      spill(golden_path(kCases[i].name, ".afevents"),
            serialize_events(events));
    }
    GTEST_SKIP() << "golden files regenerated; re-run without "
                    "AF_REGEN_GOLDEN to verify";
  }

  for (const auto& golden : kCases) {
    SCOPED_TRACE(golden.name);
    std::istringstream trace_stream(
        slurp(golden_path(golden.name, ".aftrace")));
    const sensor::MultiChannelTrace trace = sensor::parse_trace(trace_stream);
    ASSERT_GT(trace.sample_count(), 0u);

    core::Session session(golden_bundle());
    const auto events = session.process_trace(trace);
    // Exact textual diff: any drift in the replayed stream shows as a
    // line-level difference against the committed expectation.
    EXPECT_EQ(serialize_events(events),
              slurp(golden_path(golden.name, ".afevents")));
  }
}

// ------------------------------------------- corruption storm goldens
//
// Committed recordings with injected artifact storms: the expectation
// files use the `afevents 2` format, which appends the session's
// structured pipeline-event ring (quarantine transitions, artifact
// classifications, segment lifecycle) to the gesture events — keyed by
// frame numbers, never wall-clock, so the text is deterministic. Any
// drift in detection, repair, classification, or recovery shows up as an
// exact textual diff.

/// Serializes a storm replay: the gesture events (v1 lines) plus the
/// retained pipeline events, one per line, frame-keyed.
std::string serialize_run(const std::vector<core::GestureEvent>& events,
                          const obs::PipelineObservability& obs) {
  std::ostringstream os;
  os << "afevents 2\n";
  {
    // Body identical to v1 so readers share the line grammar.
    const std::string v1 = serialize_events(events);
    os << v1.substr(v1.find('\n') + 1);
  }
  const auto pipeline = obs.ring().events();
  os << "pipeline " << pipeline.size() << " dropped " << obs.ring().dropped()
     << "\n";
  for (const auto& e : pipeline)
    os << "p " << static_cast<int>(e.kind) << ' ' << e.frame << ' '
       << e.begin << ' ' << e.end << ' ' << static_cast<int>(e.detail)
       << "\n";
  return os.str();
}

/// The clean substrate the storms corrupt: three repetitions of each
/// golden motion from a dedicated seed, appended — long enough for drift
/// ramps and flicker episodes to play out against the sustain windows.
const sensor::MultiChannelTrace& storm_substrate() {
  static const sensor::MultiChannelTrace trace = [] {
    synth::CollectionConfig config;
    config.users = 1;
    config.sessions = 1;
    config.repetitions = 3;
    config.kinds.clear();
    for (const auto& c : kCases) config.kinds.push_back(c.kind);
    config.seed = 778;
    const synth::Dataset dataset = synth::DatasetBuilder(config).collect();
    AF_ASSERT(!dataset.samples.empty(), "empty storm substrate corpus");
    sensor::MultiChannelTrace out = dataset.samples.front().trace;
    for (std::size_t i = 1; i < dataset.samples.size(); ++i)
      out.append(dataset.samples[i].trace);
    return out;
  }();
  return trace;
}

/// Clean-substrate measurements, for the same threshold-derivation recipe
/// the robustness suite and bench use (DESIGN.md §17).
struct StormProfile {
  double ceiling = 0.0;   ///< max |x|.
  double max_dx = 0.0;    ///< max |x_t - x_{t-1}|.
  double max_vel = 0.0;   ///< max |EWMA baseline velocity|.
};

const StormProfile& storm_profile() {
  static const StormProfile profile = [] {
    StormProfile out;
    const auto& trace = storm_substrate();
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      sensor::ChannelArtifactDetector det;
      const auto ch = trace.channel(c);
      for (std::size_t i = 0; i < ch.size(); ++i) {
        out.ceiling = std::max(out.ceiling, std::abs(ch[i]));
        if (i > 0)
          out.max_dx = std::max(out.max_dx, std::abs(ch[i] - ch[i - 1]));
        det.accept(ch[i]);
        if (det.warmed_up())
          out.max_vel =
              std::max(out.max_vel, std::abs(det.baseline_velocity()));
      }
    }
    return out;
  }();
  return profile;
}

double storm_repair_floor() { return 6.0 * storm_profile().max_dx + 32.0; }

/// The graded policy every storm golden is recorded against.
core::FaultPolicy storm_policy() {
  core::FaultPolicy policy;
  policy.enabled = true;
  policy.saturation_level =
      storm_profile().ceiling + 8.0 * storm_repair_floor();
  policy.saturation_run_limit = 8;
  policy.stuck_run_limit = 32;
  policy.recovery_frames = 32;
  policy.artifact.repair = true;
  policy.artifact.repair_z = 6.0;
  policy.artifact.repair_min_step = storm_repair_floor();
  policy.artifact.escalate = true;
  policy.artifact.detector.drift_velocity =
      std::max(2.0 * storm_profile().max_vel, 0.05);
  return policy;
}

struct StormCase {
  const char* name;
  std::uint64_t seed;
  void (*configure)(sensor::FaultInjectorConfig&);
  /// Per-case policy adjustment (nullptr: storm_policy() as-is).
  void (*adjust)(core::FaultPolicy&);
};

const StormCase kStormCases[] = {
    {"storm_impulse_crackle", 41,
     [](sensor::FaultInjectorConfig& c) {
       c.glitch_rate = 0.004;
       c.glitch_magnitude = 4.0 * storm_repair_floor();
       c.crackle_rate = 0.0008;
       c.crackle_magnitude = 4.0 * storm_repair_floor();
     },
     nullptr},
    {"storm_step", 42,
     [](sensor::FaultInjectorConfig& c) {
       c.step_rate = 0.001;
       c.step_magnitude = 4.0 * storm_repair_floor();
     },
     nullptr},
    {"storm_drift_flicker", 43,
     [](sensor::FaultInjectorConfig& c) {
       const double slope = 8.0 * std::max(2.0 * storm_profile().max_vel,
                                           0.05);
       c.drift_rate = 0.0008;
       c.drift_run = 400;
       c.drift_magnitude = slope * static_cast<double>(c.drift_run);
       c.flicker_rate = 0.0008;
       c.flicker_run = 600;
       c.flicker_period = 8;
       c.flicker_magnitude = 4.0 * storm_profile().max_dx;
     },
     [](core::FaultPolicy& p) {
       // The slow detectors, not the saturation rail, own this storm.
       p.saturation_level = std::numeric_limits<double>::infinity();
     }},
};

core::FaultPolicy storm_case_policy(const StormCase& storm) {
  core::FaultPolicy policy = storm_policy();
  if (storm.adjust != nullptr) storm.adjust(policy);
  return policy;
}

TEST(GoldenReplay, CommittedStormTracesReplayToCommittedEventsExactly) {
  if (regen_requested()) {
    for (const StormCase& storm : kStormCases) {
      sensor::FaultInjectorConfig config;
      storm.configure(config);
      sensor::FaultInjector injector(config, storm.seed);
      const auto corrupted = injector.corrupt(storm_substrate());
      ASSERT_FALSE(injector.log().empty()) << storm.name;

      core::Session session(golden_bundle(), storm_case_policy(storm));
      const auto events = session.process_trace(corrupted);
      const std::string run = serialize_run(events, session.observability());
      // A storm golden without a quarantine transition would not pin the
      // escalation path at all — refuse to record one.
      std::size_t quarantine_enters = 0;
      for (const auto& e : session.observability().ring().events())
        if (e.kind == obs::PipelineEvent::Kind::kQuarantineEnter)
          ++quarantine_enters;
      ASSERT_GE(quarantine_enters, 1u)
          << storm.name << ": storm produced no quarantine transition";
      spill(golden_path(storm.name, ".aftrace"),
            sensor::serialize_trace(corrupted));
      spill(golden_path(storm.name, ".afevents"), run);
    }
    GTEST_SKIP() << "storm golden files regenerated; re-run without "
                    "AF_REGEN_GOLDEN to verify";
  }

  for (const StormCase& storm : kStormCases) {
    SCOPED_TRACE(storm.name);
    std::istringstream trace_stream(
        slurp(golden_path(storm.name, ".aftrace")));
    const sensor::MultiChannelTrace trace = sensor::parse_trace(trace_stream);
    ASSERT_GT(trace.sample_count(), 0u);

    core::Session session(golden_bundle(), storm_case_policy(storm));
    const auto events = session.process_trace(trace);
    EXPECT_EQ(serialize_run(events, session.observability()),
              slurp(golden_path(storm.name, ".afevents")));
  }
}

TEST(GoldenReplay, TraceSerializationRoundTripsBitExactly) {
  const auto traces = synthesize_golden_traces();
  for (const auto& trace : traces) {
    const std::string bytes = sensor::serialize_trace(trace);
    std::istringstream is(bytes);
    const sensor::MultiChannelTrace back = sensor::parse_trace(is);
    ASSERT_EQ(back.channel_count(), trace.channel_count());
    ASSERT_EQ(back.sample_count(), trace.sample_count());
    EXPECT_EQ(back.sample_rate_hz(), trace.sample_rate_hz());
    for (std::size_t c = 0; c < trace.channel_count(); ++c)
      for (std::size_t i = 0; i < trace.sample_count(); ++i)
        EXPECT_EQ(back.channel(c)[i], trace.channel(c)[i]);
    EXPECT_EQ(sensor::serialize_trace(back), bytes);
  }
}

}  // namespace
}  // namespace airfinger
