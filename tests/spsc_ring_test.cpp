// Property tests for the bounded SPSC ring behind the serving host's
// ingest lanes (common/spsc_ring.hpp).
//
// Single-threaded properties — capacity bounds, FIFO order, wraparound,
// all-or-nothing bulk transfers, full/empty edge transitions — are checked
// exhaustively over awkward capacities (1, non-powers-of-two, exactly one
// frame). The concurrent properties run a real producer thread against a
// real consumer thread over seeded burst schedules: every element arrives
// exactly once, in order, and the observed occupancy never leaves
// [0, capacity]. The same binary runs under ASan and TSan (tools/
// run_checks.sh, tools/run_tsan.sh), which is where the memory-ordering
// contract is actually enforced.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/spsc_ring.hpp"

namespace airfinger::common {
namespace {

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), PreconditionError);
}

TEST(SpscRing, EmptyFullEdgeTransitions) {
  SpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // pop on empty: no effect
  EXPECT_EQ(out, -1);

  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_FALSE(ring.try_push(4));  // push on full: no effect
  EXPECT_EQ(ring.size(), 3u);

  // Full -> one free slot -> full again, then drain to empty.
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(ring.full());
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_TRUE(ring.full());
  for (const int expected : {2, 3, 4}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CapacityOneDegeneratesToAMailbox) {
  SpscRing<std::uint64_t> ring(1);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.try_push(i));
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.try_push(i + 1000));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
    EXPECT_TRUE(ring.empty());
  }
}

TEST(SpscRing, FifoOrderSurvivesManyWraparounds) {
  // Capacity 5 is deliberately not a power of two: slot = position %
  // capacity must stay correct as the monotone positions pass multiples
  // of 5 and of the internal buffer size.
  SpscRing<std::uint64_t> ring(5);
  std::mt19937_64 rng(42);
  std::uint64_t pushed = 0, popped = 0;
  while (popped < 10'000) {
    std::uint64_t burst = rng() % 5 + 1;
    for (std::uint64_t i = 0; i < burst; ++i)
      if (ring.try_push(pushed)) ++pushed;
    burst = rng() % 5 + 1;
    for (std::uint64_t i = 0; i < burst; ++i) {
      std::uint64_t out = 0;
      if (!ring.try_pop(out)) break;
      ASSERT_EQ(out, popped);  // strict FIFO: values are the sequence
      ++popped;
    }
    ASSERT_LE(ring.size(), ring.capacity());
  }
}

TEST(SpscRing, BulkTransfersAreAllOrNothing) {
  SpscRing<double> ring(6);  // two 3-wide frames
  const std::vector<double> frame_a{1.0, 2.0, 3.0};
  const std::vector<double> frame_b{4.0, 5.0, 6.0};
  const std::vector<double> frame_c{7.0, 8.0, 9.0};

  EXPECT_TRUE(ring.try_push(std::span<const double>(frame_a)));
  EXPECT_TRUE(ring.try_push(std::span<const double>(frame_b)));
  EXPECT_TRUE(ring.full());
  // A frame that does not fit is refused whole: no partial write.
  EXPECT_FALSE(ring.try_push(std::span<const double>(frame_c)));
  EXPECT_EQ(ring.size(), 6u);

  std::vector<double> out(3, 0.0);
  ASSERT_TRUE(ring.try_pop(std::span<double>(out)));
  EXPECT_EQ(out, frame_a);
  // One frame of room now exists; the refused frame fits whole.
  EXPECT_TRUE(ring.try_push(std::span<const double>(frame_c)));
  ASSERT_TRUE(ring.try_pop(std::span<double>(out)));
  EXPECT_EQ(out, frame_b);
  ASSERT_TRUE(ring.try_pop(std::span<double>(out)));
  EXPECT_EQ(out, frame_c);
  EXPECT_TRUE(ring.empty());

  // A span wider than the whole ring can never fit.
  const std::vector<double> too_wide(7, 0.0);
  EXPECT_FALSE(ring.try_push(std::span<const double>(too_wide)));
  EXPECT_TRUE(ring.empty());
  // Popping more than is queued fails without consuming anything.
  ASSERT_TRUE(ring.try_push(std::span<const double>(frame_a)));
  std::vector<double> six(6, 0.0);
  EXPECT_FALSE(ring.try_pop(std::span<double>(six)));
  EXPECT_EQ(ring.size(), 3u);
  // Empty spans are trivially satisfied on both ends.
  EXPECT_TRUE(ring.try_push(std::span<const double>()));
  EXPECT_TRUE(ring.try_pop(std::span<double>()));
  EXPECT_EQ(ring.size(), 3u);
}

TEST(SpscRing, DiscardAllCountsAndEmpties) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.discard_all(), 0u);
  ring.try_push(1);
  ring.try_push(2);
  ring.try_push(3);
  EXPECT_EQ(ring.discard_all(), 3u);
  EXPECT_TRUE(ring.empty());
  // The ring stays usable after a discard (positions are monotone).
  EXPECT_TRUE(ring.try_push(9));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 9);
}

TEST(SpscRing, StampsRideAlongWithTheirFrames) {
  // Two 3-wide frame slots; each frame's ingest stamp must come back with
  // exactly that frame across wraparounds, and failed pushes must leave
  // the previously published stamp untouched.
  constexpr std::size_t kChannels = 3;
  SpscRing<double> ring(2 * kChannels, kChannels);
  EXPECT_EQ(ring.stamp_stride(), kChannels);
  std::vector<double> frame(kChannels);
  std::vector<double> out(kChannels);
  std::uint64_t stamp = 0;

  for (std::uint64_t k = 0; k < 50; ++k) {
    for (std::size_t c = 0; c < kChannels; ++c)
      frame[c] = static_cast<double>(k * kChannels + c);
    ASSERT_TRUE(
        ring.try_push(std::span<const double>(frame), 1000 + k));
    if (k % 2 == 1) {
      // Ring is full: the refused push must not clobber any stamp.
      ASSERT_FALSE(
          ring.try_push(std::span<const double>(frame), 9999));
      for (const std::uint64_t expect : {k - 1, k}) {
        ASSERT_TRUE(ring.try_pop(std::span<double>(out), &stamp));
        EXPECT_EQ(stamp, 1000 + expect);
        EXPECT_EQ(out[0], static_cast<double>(expect * kChannels));
      }
    }
  }
  EXPECT_TRUE(ring.empty());

  // A null stamp pointer skips the read-back without consuming wrong.
  ASSERT_TRUE(ring.try_push(std::span<const double>(frame), 777));
  ASSERT_TRUE(ring.try_pop(std::span<double>(out), nullptr));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, StampStrideZeroAllocatesNothingAndIgnoresStamps) {
  // The AF_OBS_TRACE=OFF shape: stride 0 stores no stamps, and stamped
  // pushes of any width are accepted with the stamp silently dropped.
  SpscRing<double> ring(4);
  EXPECT_EQ(ring.stamp_stride(), 0u);
  const std::vector<double> frame{1.0, 2.0};
  ASSERT_TRUE(ring.try_push(std::span<const double>(frame), 42));
  std::vector<double> out(2, 0.0);
  std::uint64_t stamp = 123;
  ASSERT_TRUE(ring.try_pop(std::span<double>(out), &stamp));
  EXPECT_EQ(stamp, 123u);  // untouched: no stamp storage exists
  EXPECT_EQ(out, frame);
}

TEST(SpscRing, StampStrideMustDivideTheCapacity) {
  EXPECT_THROW(SpscRing<double>(7, 3), PreconditionError);
  EXPECT_NO_THROW(SpscRing<double>(9, 3));
}

/// Drives one producer thread against one consumer thread with seeded
/// burst sizes and yields, checking that the consumer sees exactly the
/// sequence 0..total-1 in order and that occupancy stays within bounds.
void run_seeded_interleaving(std::size_t capacity, std::uint64_t total,
                             std::uint64_t seed) {
  SCOPED_TRACE("capacity " + std::to_string(capacity) + ", seed " +
               std::to_string(seed));
  SpscRing<std::uint64_t> ring(capacity);
  std::atomic<bool> ok{true};

  std::thread producer([&] {
    std::mt19937_64 rng(seed);
    std::uint64_t next = 0;
    while (next < total) {
      const std::uint64_t burst = rng() % 7 + 1;
      for (std::uint64_t i = 0; i < burst && next < total; ++i)
        if (ring.try_push(next)) ++next;
      if (rng() % 3 == 0) std::this_thread::yield();
    }
  });

  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::uint64_t expected = 0;
  while (expected < total) {
    const std::uint64_t burst = rng() % 7 + 1;
    for (std::uint64_t i = 0; i < burst && expected < total; ++i) {
      std::uint64_t out = 0;
      if (!ring.try_pop(out)) break;
      if (out != expected) {
        ok.store(false);
        break;
      }
      ++expected;
    }
    if (ring.size() > capacity) ok.store(false);
    if (!ok.load()) break;
    if (rng() % 3 == 0) std::this_thread::yield();
  }

  producer.join();
  EXPECT_TRUE(ok.load()) << "order or bound violated at element "
                         << expected;
  EXPECT_EQ(expected, total);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, SeededTwoThreadInterleavingsPreserveOrder) {
  // Tight capacities maximize full/empty edge transitions — the racy
  // paths where the cached-position refresh and the release/acquire
  // publish actually matter. TSan checks the ordering contract here.
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}, std::size_t{8}})
    for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL})
      run_seeded_interleaving(capacity, 20'000, seed);
}

TEST(SpscRing, ConcurrentBulkFramesStayFrameAligned) {
  // The host's usage shape: a ring of doubles, every transfer exactly one
  // 3-wide frame. Frame k carries {3k, 3k+1, 3k+2}; any torn or
  // misaligned transfer shows up as a value mismatch.
  constexpr std::size_t kChannels = 3;
  constexpr std::uint64_t kFrames = 30'000;
  SpscRing<double> ring(8 * kChannels);
  std::atomic<bool> ok{true};

  std::thread producer([&] {
    std::mt19937_64 rng(99);
    std::vector<double> frame(kChannels);
    std::uint64_t sent = 0;
    while (sent < kFrames) {
      for (std::size_t c = 0; c < kChannels; ++c)
        frame[c] = static_cast<double>(sent * kChannels + c);
      if (ring.try_push(std::span<const double>(frame))) ++sent;
      if (rng() % 5 == 0) std::this_thread::yield();
    }
  });

  std::vector<double> frame(kChannels);
  std::uint64_t received = 0;
  while (received < kFrames && ok.load()) {
    if (!ring.try_pop(std::span<double>(frame))) continue;
    for (std::size_t c = 0; c < kChannels; ++c)
      if (frame[c] != static_cast<double>(received * kChannels + c))
        ok.store(false);
    ++received;
  }
  producer.join();
  EXPECT_TRUE(ok.load()) << "frame " << received << " torn or reordered";
  EXPECT_EQ(received, kFrames);
}

}  // namespace
}  // namespace airfinger::common
