// Determinism regression suite: the contract that keeps every figure bench
// reproducible. Dataset synthesis, random-forest fitting, and full engine
// training must be bit-identical between 1 thread and N threads for the
// same seed (see DESIGN.md "Concurrency & determinism").
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "ml/random_forest.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

synth::CollectionConfig small_protocol() {
  synth::CollectionConfig config;
  config.users = 2;
  config.sessions = 2;
  config.repetitions = 2;
  config.seed = 21;
  return config;
}

synth::Dataset collect_with(std::size_t threads,
                            const synth::CollectionConfig& config) {
  common::ScopedThreads scoped(threads);
  return synth::DatasetBuilder(config).collect();
}

void expect_samples_identical(const synth::GestureSample& a,
                              const synth::GestureSample& b,
                              std::size_t index) {
  SCOPED_TRACE("sample " + std::to_string(index));
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.user_id, b.user_id);
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.repetition, b.repetition);
  // Bit-exact double comparisons throughout: the contract is bit identity,
  // not tolerance.
  EXPECT_EQ(a.gesture_start_s, b.gesture_start_s);
  EXPECT_EQ(a.gesture_end_s, b.gesture_end_s);
  EXPECT_EQ(a.standoff_m, b.standoff_m);
  EXPECT_EQ(a.scroll.has_value(), b.scroll.has_value());
  if (a.scroll && b.scroll) {
    EXPECT_EQ(a.scroll->direction, b.scroll->direction);
    EXPECT_EQ(a.scroll->displacement_m, b.scroll->displacement_m);
    EXPECT_EQ(a.scroll->mean_velocity_mps, b.scroll->mean_velocity_mps);
  }
  ASSERT_EQ(a.trace.channel_count(), b.trace.channel_count());
  for (std::size_t c = 0; c < a.trace.channel_count(); ++c) {
    const auto ca = a.trace.channel(c);
    const auto cb = b.trace.channel(c);
    ASSERT_EQ(ca.size(), cb.size()) << "channel " << c;
    EXPECT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin()))
        << "channel " << c;
  }
}

TEST(Determinism, DatasetIsBitIdenticalAcrossThreadCounts) {
  const auto config = small_protocol();
  const synth::Dataset serial = collect_with(1, config);
  for (std::size_t threads : {2u, 3u, 8u}) {
    const synth::Dataset parallel = collect_with(threads, config);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i)
      expect_samples_identical(serial.samples[i], parallel.samples[i], i);
  }
}

/// Synthetic three-class set: class-dependent means on the first three
/// features, noise on the rest. Pure Rng arithmetic — fully deterministic.
ml::SampleSet toy_classification_set(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  ml::SampleSet set;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 3);
    std::vector<double> x(8);
    for (std::size_t f = 0; f < x.size(); ++f) {
      const double mean = f < 3 && static_cast<int>(f) == label ? 2.5 : 0.0;
      x[f] = rng.normal(mean, 1.0);
    }
    set.features.push_back(std::move(x));
    set.labels.push_back(label);
  }
  return set;
}

TEST(Determinism, ForestFitIsBitIdenticalAcrossThreadCounts) {
  const ml::SampleSet data = toy_classification_set(150, 0xF0DE);
  ml::RandomForestConfig config;
  config.num_trees = 24;
  config.seed = 17;

  ml::RandomForest serial(config);
  {
    common::ScopedThreads scoped(1);
    serial.fit(data);
  }
  for (std::size_t threads : {2u, 4u, 7u}) {
    ml::RandomForest parallel(config);
    {
      common::ScopedThreads scoped(threads);
      parallel.fit(data);
    }
    // Importances: exact equality (the ordered-reduction guarantee).
    EXPECT_EQ(serial.feature_importances(),
              parallel.feature_importances())
        << threads << " threads";
    // Predictions and probabilities over the whole set.
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(serial.predict(data.features[i]),
                parallel.predict(data.features[i]));
      EXPECT_EQ(serial.predict_proba(data.features[i]),
                parallel.predict_proba(data.features[i]));
    }
    // Serialized forests must be byte-identical.
    std::ostringstream sa, sb;
    serial.save(sa);
    parallel.save(sb);
    EXPECT_EQ(sa.str(), sb.str()) << threads << " threads";
  }
}

TEST(Determinism, ForestImportancesPinnedForFixedSeed) {
  // Pins the importance vector for a fixed seed: any change to the
  // per-tree RNG streams, the bootstrap, or the reduction order shows up
  // here as a diff, not as a silent reproducibility break. Values are the
  // 1-thread reference; the assertion runs under a parallel pool.
  const ml::SampleSet data = toy_classification_set(120, 0xBEEF);
  ml::RandomForestConfig config;
  config.num_trees = 16;
  config.seed = 17;
  ml::RandomForest forest(config);
  {
    common::ScopedThreads scoped(4);
    forest.fit(data);
  }
  const std::vector<double> expected = {
      0.19634739853801103,  0.26860384064423543, 0.26489846968408598,
      0.063546858449280347, 0.052736782968217252, 0.070937209195563608,
      0.03257495865882621,  0.050354481861780126,
  };
  const auto& imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), expected.size());
  double total = 0.0;
  for (std::size_t f = 0; f < imp.size(); ++f) {
    EXPECT_NEAR(imp[f], expected[f], 1e-12) << "feature " << f;
    total += imp[f];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The informative features (class-dependent means) must dominate.
  EXPECT_GT(imp[0] + imp[1] + imp[2], 0.5);
}

core::TrainerConfig small_trainer() {
  core::TrainerConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 3;
  config.non_gesture_repetitions = 3;
  config.seed = 11;
  return config;
}

void expect_events_identical(const std::vector<core::GestureEvent>& a,
                             const std::vector<core::GestureEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    EXPECT_EQ(a[e].time_s, b[e].time_s);
    EXPECT_EQ(a[e].gesture, b[e].gesture);
    EXPECT_EQ(a[e].segment_begin, b[e].segment_begin);
    EXPECT_EQ(a[e].segment_end, b[e].segment_end);
    EXPECT_EQ(a[e].scroll.has_value(), b[e].scroll.has_value());
    if (a[e].scroll && b[e].scroll) {
      EXPECT_EQ(a[e].scroll->direction, b[e].scroll->direction);
      EXPECT_EQ(a[e].scroll->velocity_mps, b[e].scroll->velocity_mps);
      EXPECT_EQ(a[e].scroll->duration_s, b[e].scroll->duration_s);
    }
  }
}

TEST(Determinism, BuildEngineIsBitIdenticalAcrossThreadCounts) {
  const core::TrainerConfig config = small_trainer();

  core::TrainingReport serial_report;
  std::optional<core::AirFinger> serial;
  {
    common::ScopedThreads scoped(1);
    serial.emplace(core::build_engine(config, &serial_report));
  }

  // Probe recordings the engines must agree on, byte for byte.
  synth::CollectionConfig probe_config;
  probe_config.users = 1;
  probe_config.sessions = 1;
  probe_config.repetitions = 1;
  probe_config.kinds = {synth::MotionKind::kCircle,
                        synth::MotionKind::kScrollUp};
  probe_config.seed = 404;
  const synth::Dataset probes =
      synth::DatasetBuilder(probe_config).collect();

  for (std::size_t threads : {2u, 4u}) {
    core::TrainingReport report;
    std::optional<core::AirFinger> parallel;
    {
      common::ScopedThreads scoped(threads);
      parallel.emplace(core::build_engine(config, &report));
    }
    EXPECT_EQ(serial_report.gesture_samples, report.gesture_samples);
    EXPECT_EQ(serial_report.non_gesture_samples,
              report.non_gesture_samples);
    // Feature selection is RF-importance driven: identical name lists in
    // identical order prove the fitted forests match.
    EXPECT_EQ(serial_report.selected_feature_names,
              report.selected_feature_names);
    EXPECT_EQ(serial->config().zebra.velocity_gain,
              parallel->config().zebra.velocity_gain);
    for (const auto& probe : probes.samples)
      expect_events_identical(serial->classify_recording(probe.trace),
                              parallel->classify_recording(probe.trace));
  }
}

TEST(Determinism, MultiSessionHostIsBitIdenticalAcrossThreadCounts) {
  // Eight concurrent streams over one shared bundle must emit the exact
  // same event sequence whether the host pumps them on 1 thread or 8:
  // each session is advanced by exactly one task per pump and drain()
  // orders events by (session, emission), so no schedule can reorder or
  // perturb anything.
  std::shared_ptr<const core::ModelBundle> bundle;
  {
    common::ScopedThreads scoped(1);
    bundle = core::build_bundle(small_trainer());
  }

  constexpr std::size_t kStreams = 8;
  std::vector<sensor::MultiChannelTrace> traces;
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle, synth::MotionKind::kScrollUp,
      synth::MotionKind::kClick, synth::MotionKind::kScrollDown};
  for (std::size_t s = 0; s < kStreams; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = 900 + s;
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
  }

  const auto run_with = [&](std::size_t threads) {
    common::ScopedThreads scoped(threads);
    core::MultiSessionHost host(bundle, kStreams);
    return host.run_round_robin(traces, 53);
  };

  const auto serial = run_with(1);
  ASSERT_FALSE(serial.empty());
  for (std::size_t threads : {2u, 8u}) {
    const auto parallel = run_with(threads);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    std::vector<core::GestureEvent> a, b;
    for (std::size_t e = 0; e < serial.size(); ++e) {
      EXPECT_EQ(serial[e].session, parallel[e].session)
          << threads << " threads, event " << e;
      a.push_back(serial[e].event);
      b.push_back(parallel[e].event);
    }
    expect_events_identical(a, b);
  }
}

TEST(Determinism, FeatureSetIsThreadCountInvariant) {
  const auto config = small_protocol();
  const synth::Dataset data = synth::DatasetBuilder(config).collect();
  const core::DataProcessor processor;
  const features::FeatureBank bank;
  std::optional<ml::SampleSet> serial;
  {
    common::ScopedThreads scoped(1);
    serial.emplace(core::build_feature_set(data, processor, bank,
                                           core::LabelScheme::kAllEight,
                                           core::GroupScheme::kUser));
  }
  for (std::size_t threads : {3u, 6u}) {
    common::ScopedThreads scoped(threads);
    const ml::SampleSet parallel = core::build_feature_set(
        data, processor, bank, core::LabelScheme::kAllEight,
        core::GroupScheme::kUser);
    EXPECT_EQ(serial->features, parallel.features);
    EXPECT_EQ(serial->labels, parallel.labels);
    EXPECT_EQ(serial->groups, parallel.groups);
  }
}

}  // namespace
}  // namespace airfinger
