// Property-based tests: parameterized sweeps over motion kinds, SBC window
// sizes, signal-to-noise ratios, sensing distances, and engine invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/data_processor.hpp"
#include "dsp/sbc.hpp"
#include "core/training.hpp"
#include "features/bank.hpp"
#include "optics/scene.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

// ------------------------------------------------- per-kind properties

class MotionKindProperties
    : public ::testing::TestWithParam<synth::MotionKind> {};

TEST_P(MotionKindProperties, SamplesAreWellFormed) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 3;
  config.kinds = {GetParam()};
  config.seed = 0x600D + static_cast<std::uint64_t>(GetParam());
  const auto data = synth::DatasetBuilder(config).collect();
  ASSERT_EQ(data.size(), 3u);
  for (const auto& s : data.samples) {
    EXPECT_EQ(s.kind, GetParam());
    EXPECT_EQ(s.trace.channel_count(), 3u);
    EXPECT_GT(s.trace.sample_count(), 50u);
    for (std::size_t c = 0; c < 3; ++c)
      for (double v : s.trace.channel(c)) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1023.0);
      }
  }
}

TEST_P(MotionKindProperties, GestureWindowCarriesMoreEnergyThanIdle) {
  synth::CollectionConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 3;
  config.kinds = {GetParam()};
  config.seed = 0xE4E4 + static_cast<std::uint64_t>(GetParam());
  const auto data = synth::DatasetBuilder(config).collect();
  const core::DataProcessor proc;
  int stronger = 0;
  for (const auto& s : data.samples) {
    const auto p = proc.process(s.trace);
    const double rate = s.trace.sample_rate_hz();
    const auto g0 = static_cast<std::size_t>(s.gesture_start_s * rate);
    const auto g1 = static_cast<std::size_t>(s.gesture_end_s * rate);
    if (g0 < 8 || g1 + 2 >= p.energy.size()) continue;
    const std::span<const double> idle(p.energy.data() + 2, g0 - 4);
    const std::span<const double> gest(p.energy.data() + g0, g1 - g0);
    if (common::mean(gest) > 3.0 * common::mean(idle)) ++stronger;
  }
  EXPECT_GE(stronger, 2);  // at least 2 of 6 repetitions clearly energetic
  // (weak kinds like extend sit near this floor; user draws dominate the
  // ratio, hence two users rather than a tighter per-sample threshold)
}

TEST_P(MotionKindProperties, FeatureExtractionStaysFinite) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 2;
  config.kinds = {GetParam()};
  config.seed = 0xF1F1 + static_cast<std::uint64_t>(GetParam());
  const auto data = synth::DatasetBuilder(config).collect();
  const core::DataProcessor proc;
  const features::FeatureBank bank;
  const auto set = core::build_feature_set(
      data, proc, bank,
      synth::is_gesture(GetParam())
          ? core::LabelScheme::kAllEight
          : core::LabelScheme::kGestureVsNonGesture);
  for (const auto& row : set.features)
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MotionKindProperties,
    ::testing::Values(
        synth::MotionKind::kCircle, synth::MotionKind::kDoubleCircle,
        synth::MotionKind::kRub, synth::MotionKind::kDoubleRub,
        synth::MotionKind::kClick, synth::MotionKind::kDoubleClick,
        synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown,
        synth::MotionKind::kScratch, synth::MotionKind::kExtend,
        synth::MotionKind::kReposition),
    [](const auto& info) {
      std::string name{synth::motion_name(info.param)};
      for (auto& c : name)
        if (c == ' ') c = '_';
      return name;
    });

// ------------------------------------------------- SBC window sweep

class SbcWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SbcWindowSweep, BatchAndStreamAgreeAndConstantVanishes) {
  const std::size_t w = GetParam();
  common::Rng rng(w);
  std::vector<double> x(300, 500.0);  // constant + burst
  for (int i = 100; i < 150; ++i) x[static_cast<std::size_t>(i)] += 80.0;
  const auto batch = dsp::SquareBasedCalculator::apply(x, w);
  dsp::SquareBasedCalculator stream(w);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(stream.push(x[i]), batch[i]);
  // Constant regions vanish exactly once the window is past them.
  for (std::size_t i = w; i < 100; ++i) EXPECT_DOUBLE_EQ(batch[i], 0.0);
  for (std::size_t i = 150 + w; i < 300; ++i)
    EXPECT_DOUBLE_EQ(batch[i], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, SbcWindowSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 25));

// ------------------------------------------------- SNR sweep

class SegmenterSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(SegmenterSnrSweep, BurstDetectedDownToModerateSnr) {
  const double snr = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(snr * 1000));
  std::vector<double> x;
  for (int i = 0; i < 150; ++i) x.push_back(std::fabs(rng.normal(4, 1.5)));
  for (int i = 0; i < 40; ++i)
    x.push_back(4.0 * snr * (0.6 + rng.uniform() * 0.8));
  for (int i = 0; i < 150; ++i) x.push_back(std::fabs(rng.normal(4, 1.5)));
  const auto segs = dsp::segment_signal(x, {});
  EXPECT_EQ(segs.size(), 1u) << "SNR " << snr;
}

INSTANTIATE_TEST_SUITE_P(Levels, SegmenterSnrSweep,
                         ::testing::Values(15.0, 40.0, 120.0, 400.0));

// ------------------------------------------------- distance sweep

class DistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DistanceSweep, SignalDecreasesMonotonicallyWithDistance) {
  optics::AmbientConditions night;
  night.hour_of_day = 2.0;
  const auto scene =
      optics::make_prototype_scene({}, optics::AmbientModel(night));
  optics::ReflectorPatch finger;
  finger.position = {0, 0, GetParam()};
  const auto at = scene.evaluate({&finger, 1}, 0.0);
  optics::ReflectorPatch farther = finger;
  farther.position.z += 0.005;
  const auto beyond = scene.evaluate({&farther, 1}, 0.0);
  EXPECT_GT(at[1], beyond[1]);
}

// Below ~12 mm the narrow LED beams have not yet converged over the centre
// photodiode, so the response is not monotone there (a real close-range
// dead zone); the sweep starts where the paper's working range does.
INSTANTIATE_TEST_SUITE_P(Standoffs, DistanceSweep,
                         ::testing::Values(0.013, 0.02, 0.03, 0.05, 0.08));

// ------------------------------------------------- seed stability

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DatasetGenerationNeverProducesDegenerateTraces) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.seed = GetParam();
  const auto data = synth::DatasetBuilder(config).collect();
  for (const auto& s : data.samples) {
    // The trace must not be stuck at a rail.
    for (std::size_t c = 0; c < s.trace.channel_count(); ++c) {
      const auto ch = s.trace.channel(c);
      EXPECT_GT(common::stddev(ch), 0.1);
      EXPECT_LT(common::mean(ch), 1015.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 17, 4242, 99991, 123456789));

}  // namespace
}  // namespace airfinger
