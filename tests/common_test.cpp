// Unit tests for the common foundation library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace airfinger::common {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(99);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(12);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / 5000.0, 10.0, 0.15);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  Rng child2 = parent.split();
  // Children must differ from each other and the parent's continuation.
  EXPECT_NE(child(), child2());
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(8);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PreconditionViolationsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), PreconditionError);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanVarianceStd) {
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_DOUBLE_EQ(variance(x), 1.25);
  EXPECT_DOUBLE_EQ(stddev(x), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(sample_variance(x), 5.0 / 3.0);
}

TEST(Stats, MinMaxSumEnergy) {
  const std::vector<double> x{3, -1, 2};
  EXPECT_DOUBLE_EQ(min(x), -1.0);
  EXPECT_DOUBLE_EQ(max(x), 3.0);
  EXPECT_DOUBLE_EQ(sum(x), 4.0);
  EXPECT_DOUBLE_EQ(energy(x), 14.0);
}

TEST(Stats, MedianAndQuantiles) {
  const std::vector<double> x{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(x), 3.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 3.0);
  // Interpolation between ranks.
  const std::vector<double> y{0, 10};
  EXPECT_DOUBLE_EQ(quantile(y, 0.25), 2.5);
}

TEST(Stats, QuantileSelectionMatchesFullSortBitExact) {
  // quantile_with selects the two bracketing order statistics instead of
  // sorting; order statistics are value-identical either way, so every
  // result must match the sorted-copy reference bit for bit.
  Rng rng(4242);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
        std::size_t{17}, std::size_t{96}, std::size_t{301}}) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.normal() * 10.0;
    std::vector<double> sorted = x;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> scratch(n);
    for (const double q : {0.0, 0.1, 0.25, 0.5, 0.62, 0.75, 0.9, 1.0}) {
      const double want = quantile_sorted(sorted, q);
      const double got = quantile_with(x, q, scratch);
      std::uint64_t bw = 0, bg = 0;
      std::memcpy(&bw, &want, sizeof(want));
      std::memcpy(&bg, &got, sizeof(got));
      EXPECT_EQ(bw, bg) << "n=" << n << " q=" << q << ": " << want << " vs "
                        << got;
    }
  }
}

TEST(Stats, SkewnessSymmetricIsZero) {
  const std::vector<double> x{-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(x), 0.0, 1e-12);
}

TEST(Stats, KurtosisOfConstantIsZero) {
  const std::vector<double> x{3, 3, 3};
  EXPECT_DOUBLE_EQ(kurtosis(x), 0.0);
  EXPECT_DOUBLE_EQ(skewness(x), 0.0);
}

TEST(Stats, ArgminArgmaxFirstAndLast) {
  const std::vector<double> x{1, 5, 0, 5, 0};
  EXPECT_EQ(argmax(x), 1u);
  EXPECT_EQ(last_argmax(x), 3u);
  EXPECT_EQ(argmin(x), 2u);
  EXPECT_EQ(last_argmin(x), 4u);
}

TEST(Stats, CountsAroundMean) {
  const std::vector<double> x{0, 0, 0, 4};  // mean 1
  EXPECT_EQ(count_below_mean(x), 3u);
  EXPECT_EQ(count_above_mean(x), 1u);
}

TEST(Stats, LongestStrikes) {
  const std::vector<double> x{0, 2, 2, 2, 0, 2, 0, 0};  // mean 1
  EXPECT_EQ(longest_strike_above_mean(x), 3u);
  EXPECT_EQ(longest_strike_below_mean(x), 2u);
}

TEST(Stats, PearsonPerfectAndAnti) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Stats, MeanAbsChange) {
  const std::vector<double> x{0, 2, 1};
  EXPECT_DOUBLE_EQ(mean_abs_change(x), 1.5);
  const std::vector<double> single{5};
  EXPECT_DOUBLE_EQ(mean_abs_change(single), 0.0);
}

TEST(Stats, LinearTrendRecoversLine) {
  std::vector<double> x;
  for (int i = 0; i < 20; ++i) x.push_back(3.0 * i + 7.0);
  const auto [slope, intercept] = linear_trend(x);
  EXPECT_NEAR(slope, 3.0, 1e-9);
  EXPECT_NEAR(intercept, 7.0, 1e-9);
}

TEST(Stats, ZNormalizeProperties) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const auto z = znormalize(x);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
  const std::vector<double> c{2, 2, 2};
  for (double v : znormalize(c)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Stats, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), PreconditionError);
  EXPECT_THROW(variance(empty), PreconditionError);
  EXPECT_THROW(quantile(empty, 0.5), PreconditionError);
  EXPECT_THROW(argmax(empty), PreconditionError);
}

// ---------------------------------------------------------------- matrix

TEST(Matrix, IdentitySolve) {
  Matrix a = Matrix::identity(3);
  const auto x = solve_linear(a, {1, 2, 3});
  EXPECT_DOUBLE_EQ(x[0], 1);
  EXPECT_DOUBLE_EQ(x[1], 2);
  EXPECT_DOUBLE_EQ(x[2], 3);
}

TEST(Matrix, SolveKnownSystem) {
  Matrix a = Matrix::from_rows({{2, 1}, {1, 3}});
  const auto x = solve_linear(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveNeedsPivoting) {
  Matrix a = Matrix::from_rows({{0, 1}, {1, 0}});
  const auto x = solve_linear(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, SingularThrows) {
  Matrix a = Matrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_THROW(solve_linear(a, {1, 2}), NumericError);
}

TEST(Matrix, ProductAndTranspose) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = Matrix::from_rows({{0, 1}, {1, 0}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2);
  EXPECT_DOUBLE_EQ(c(0, 1), 1);
  EXPECT_DOUBLE_EQ(c(1, 0), 4);
  EXPECT_DOUBLE_EQ(c(1, 1), 3);
  Matrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 3);
}

TEST(Matrix, OlsRecoversCoefficients) {
  // y = 2*x1 - 3*x2 + 1 with intercept column.
  Matrix design(50, 3);
  std::vector<double> y(50);
  Rng rng(4);
  for (std::size_t i = 0; i < 50; ++i) {
    const double x1 = rng.uniform(-1, 1), x2 = rng.uniform(-1, 1);
    design(i, 0) = 1.0;
    design(i, 1) = x1;
    design(i, 2) = x2;
    y[i] = 1.0 + 2.0 * x1 - 3.0 * x2;
  }
  const auto beta = ols(design, y);
  EXPECT_NEAR(beta[0], 1.0, 1e-6);
  EXPECT_NEAR(beta[1], 2.0, 1e-6);
  EXPECT_NEAR(beta[2], -3.0, 1e-6);
}

TEST(Matrix, VectorApply) {
  Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const auto v = a.apply(std::vector<double>{1, 1, 1});
  EXPECT_DOUBLE_EQ(v[0], 6);
  EXPECT_DOUBLE_EQ(v[1], 15);
}

// ---------------------------------------------------------------- table/cli/csv

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", Table::pct(0.9731)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("97.31%"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(Cli, ParsesFlagsAndTypes) {
  Cli cli("test");
  cli.add_flag("count", "5", "a number");
  cli.add_flag("name", "x", "a string");
  cli.add_flag("verbose", "false", "a bool");
  const char* argv[] = {"prog", "--count=9", "--name", "hello", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("count"), 9);
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(Cli, DefaultsApply) {
  Cli cli("test");
  cli.add_flag("x", "3.5", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 3.5);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_line({"a", "b,c"}), "a,\"b,c\"");
}

}  // namespace
}  // namespace airfinger::common
