// Unit tests for the human-behaviour substrate.
#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "synth/dataset.hpp"
#include "synth/motion_kind.hpp"
#include "synth/scenario.hpp"
#include "synth/smooth_noise.hpp"
#include "synth/trajectory.hpp"
#include "synth/user.hpp"

namespace airfinger::synth {
namespace {

// ---------------------------------------------------------------- kinds

TEST(MotionKind, Taxonomy) {
  EXPECT_EQ(all_gestures().size(), 8u);
  EXPECT_EQ(detect_gestures().size(), 6u);
  EXPECT_EQ(track_gestures().size(), 2u);
  EXPECT_EQ(non_gestures().size(), 3u);

  EXPECT_TRUE(is_gesture(MotionKind::kCircle));
  EXPECT_TRUE(is_detect_aimed(MotionKind::kDoubleClick));
  EXPECT_FALSE(is_detect_aimed(MotionKind::kScrollUp));
  EXPECT_TRUE(is_track_aimed(MotionKind::kScrollDown));
  EXPECT_FALSE(is_gesture(MotionKind::kScratch));
}

TEST(MotionKind, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int k = 0; k < kMotionKindCount; ++k)
    names.insert(motion_name(static_cast<MotionKind>(k)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kMotionKindCount));
}

// ---------------------------------------------------------------- noise

TEST(SmoothNoise, BandLimitedAndDeterministic) {
  common::Rng a(1), b(1);
  SmoothNoise na(a, 4.0, 9.0, 1.0);
  SmoothNoise nb(b, 4.0, 9.0, 1.0);
  for (double t = 0; t < 1.0; t += 0.07)
    EXPECT_DOUBLE_EQ(na.at(t), nb.at(t));
}

TEST(SmoothNoise, ScaleBoundsAmplitude) {
  common::Rng rng(2);
  SmoothNoise n(rng, 2.0, 5.0, 0.001, 4);
  for (double t = 0; t < 5.0; t += 0.011)
    EXPECT_LT(std::fabs(n.at(t)), 0.003);  // sum of 4 comps ≤ ~2.1× scale
}

// ---------------------------------------------------------------- user

TEST(UserProfile, SampledWithinDocumentedRanges) {
  common::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto u = UserProfile::sample(i, rng);
    EXPECT_EQ(u.user_id, i);
    EXPECT_GE(u.speed_factor, 0.75);
    EXPECT_LE(u.speed_factor, 1.35);
    EXPECT_GE(u.standoff_m, 0.010);
    EXPECT_LE(u.standoff_m, 0.024);
    EXPECT_GE(u.skin_reflectivity, 0.45);
    EXPECT_LE(u.skin_reflectivity, 0.72);
  }
}

TEST(UserProfile, UsersDifferMoreThanSessions) {
  common::Rng rng(4);
  // User-level speed spread should dominate session-level drift spread.
  std::vector<double> user_speeds, session_drifts;
  for (int i = 0; i < 200; ++i) {
    user_speeds.push_back(UserProfile::sample(i, rng).speed_factor);
    session_drifts.push_back(
        SessionContext::sample(i, 11.0, rng).speed_drift);
  }
  const double user_sd = common::stddev(user_speeds);
  const double session_sd = common::stddev(session_drifts);
  EXPECT_GT(user_sd, 2.0 * session_sd);
}

TEST(RepetitionJitter, SmallerThanSessionDrift) {
  common::Rng rng(5);
  std::vector<double> rep, sess;
  for (int i = 0; i < 200; ++i) {
    rep.push_back(RepetitionJitter::sample(rng).speed);
    sess.push_back(SessionContext::sample(i, 11.0, rng).speed_drift);
  }
  EXPECT_LT(common::stddev(rep), common::stddev(sess));
}

// ------------------------------------------------------------ trajectory

TEST(Trajectory, MinimumJerkProperties) {
  EXPECT_DOUBLE_EQ(minimum_jerk(0.0), 0.0);
  EXPECT_DOUBLE_EQ(minimum_jerk(1.0), 1.0);
  EXPECT_DOUBLE_EQ(minimum_jerk(0.5), 0.5);
  EXPECT_LT(minimum_jerk(0.1), 0.1);  // slow start
}

TEST(Trajectory, SpeedScalesDuration) {
  common::Rng rng(6);
  MotionParams slow, fast;
  slow.speed = 0.8;
  fast.speed = 1.6;
  const auto a = make_motion(MotionKind::kCircle, slow, rng);
  const auto b = make_motion(MotionKind::kCircle, fast, rng);
  EXPECT_NEAR(a.duration_s() / b.duration_s(), 2.0, 1e-9);
}

TEST(Trajectory, DoubleGesturesLastLonger) {
  common::Rng rng(7);
  const MotionParams p;
  EXPECT_GT(make_motion(MotionKind::kDoubleCircle, p, rng).duration_s(),
            make_motion(MotionKind::kCircle, p, rng).duration_s());
  EXPECT_GT(make_motion(MotionKind::kDoubleClick, p, rng).duration_s(),
            make_motion(MotionKind::kClick, p, rng).duration_s());
}

TEST(Trajectory, EvaluationClampsOutsideDuration) {
  common::Rng rng(8);
  const MotionParams p;
  const auto m = make_motion(MotionKind::kClick, p, rng);
  const auto before = m.at(-1.0);
  const auto at0 = m.at(0.0);
  EXPECT_DOUBLE_EQ(before.position.z, at0.position.z);
}

TEST(Trajectory, ClickDipsTowardsBoard) {
  common::Rng rng(9);
  MotionParams p;
  p.standoff_m = 0.02;
  const auto m = make_motion(MotionKind::kClick, p, rng);
  const double mid_z = m.at(m.duration_s() / 2).position.z;
  const double start_z = m.at(0.0).position.z;
  EXPECT_LT(mid_z, start_z - 0.005);
}

TEST(Trajectory, ScrollSweepsAcrossBoard) {
  common::Rng rng(10);
  MotionParams p;
  const auto up = make_motion(MotionKind::kScrollUp, p, rng);
  EXPECT_LT(up.at(0.0).position.x, -0.02);
  EXPECT_GT(up.at(up.duration_s()).position.x, 0.02);
  const auto down = make_motion(MotionKind::kScrollDown, p, rng);
  EXPECT_GT(down.at(0.0).position.x, 0.02);
}

TEST(Trajectory, PartialScrollStopsShort) {
  common::Rng rng(11);
  MotionParams p;
  p.partial_extent = 0.4;
  const auto m = make_motion(MotionKind::kScrollUp, p, rng);
  EXPECT_LT(m.at(m.duration_s()).position.x, 0.0);  // never reaches P3 side
}

TEST(Trajectory, ScrollEntryAndExitAreLifted) {
  common::Rng rng(12);
  MotionParams p;
  p.standoff_m = 0.02;
  const auto m = make_motion(MotionKind::kScrollUp, p, rng);
  EXPECT_GT(m.at(0.0).position.z, p.standoff_m + 0.01);
  EXPECT_GT(m.at(m.duration_s()).position.z, p.standoff_m + 0.01);
  EXPECT_LT(m.at(m.duration_s() / 2).position.z, p.standoff_m + 0.01);
}

TEST(Trajectory, ScrollTruthMatchesParameters) {
  MotionParams p;
  p.amplitude = 1.0;
  p.speed = 1.0;
  const auto up = scroll_truth(MotionKind::kScrollUp, p);
  EXPECT_DOUBLE_EQ(up.direction, 1.0);
  EXPECT_NEAR(up.displacement_m, 2.0 * kScrollHalfSpanM, 1e-12);
  EXPECT_NEAR(up.mean_velocity_mps,
              up.displacement_m / up.duration_s, 1e-12);
  const auto down = scroll_truth(MotionKind::kScrollDown, p);
  EXPECT_DOUBLE_EQ(down.direction, -1.0);
  EXPECT_THROW(scroll_truth(MotionKind::kCircle, p), PreconditionError);
}

TEST(Trajectory, MirrorYFlipsLateralAxis) {
  common::Rng rng_a(13), rng_b(13);
  MotionParams p, q;
  p.tilt_rad = 0.3;
  q = p;
  q.mirror_y = true;
  const auto a = make_motion(MotionKind::kRub, p, rng_a);
  const auto b = make_motion(MotionKind::kRub, q, rng_b);
  const auto pa = a.at(0.1).position;
  const auto pb = b.at(0.1).position;
  EXPECT_NEAR(pa.y, -pb.y, 1e-9);
  EXPECT_NEAR(pa.x, pb.x, 1e-9);
}

TEST(Trajectory, RubIsFasterThanCircle) {
  // The stroke tempo difference is the circle-vs-rub signature.
  common::Rng rng(14);
  const MotionParams p;
  const auto rub = make_motion(MotionKind::kRub, p, rng);
  const auto circle = make_motion(MotionKind::kCircle, p, rng);
  // Count x-direction reversals as a crude stroke-rate measure.
  auto reversals = [](const Motion& m) {
    int count = 0;
    double prev_dx = 0.0;
    for (double t = 0.01; t < m.duration_s(); t += 0.01) {
      const double dx = m.at(t).position.x - m.at(t - 0.01).position.x;
      if (dx * prev_dx < 0) ++count;
      if (dx != 0.0) prev_dx = dx;
    }
    return count / m.duration_s();
  };
  EXPECT_GT(reversals(rub), reversals(circle));
}

TEST(Trajectory, InvalidParamsThrow) {
  common::Rng rng(15);
  MotionParams bad;
  bad.speed = 0.0;
  EXPECT_THROW(make_motion(MotionKind::kCircle, bad, rng),
               PreconditionError);
}

// ------------------------------------------------------------ scenario

TEST(Scenario, DurationsIncludePadding) {
  common::Rng rng(16);
  ScenarioSpec spec;
  spec.kind = MotionKind::kClick;
  spec.user = UserProfile::sample(0, rng);
  spec.session = SessionContext::sample(0, 11.0, rng);
  spec.repetition = RepetitionJitter::sample(rng);
  const auto sc = make_scenario(spec, rng);
  EXPECT_GT(sc.gesture_start_s, 0.0);
  EXPECT_GT(sc.gesture_end_s, sc.gesture_start_s);
  EXPECT_GT(sc.duration_s, sc.gesture_end_s);
}

TEST(Scenario, ProviderAlwaysHasFingerAndHand) {
  common::Rng rng(17);
  ScenarioSpec spec;
  spec.user = UserProfile::sample(0, rng);
  const auto sc = make_scenario(spec, rng);
  for (double t = 0.0; t < sc.duration_s; t += 0.13) {
    const auto state = sc.provider(t);
    EXPECT_GE(state.patches.size(), 2u);  // finger + rest-of-hand
  }
}

TEST(Scenario, PasserByAddsThirdPatch) {
  common::Rng rng(18);
  ScenarioSpec spec;
  spec.user = UserProfile::sample(0, rng);
  spec.interference.passer_by = true;
  const auto sc = make_scenario(spec, rng);
  EXPECT_GE(sc.provider(0.5).patches.size(), 3u);
}

TEST(Scenario, ScrollCarriesTruth) {
  common::Rng rng(19);
  ScenarioSpec spec;
  spec.kind = MotionKind::kScrollUp;
  spec.user = UserProfile::sample(0, rng);
  const auto sc = make_scenario(spec, rng);
  ASSERT_TRUE(sc.scroll.has_value());
  EXPECT_DOUBLE_EQ(sc.scroll->direction, 1.0);
}

TEST(Scenario, StandoffOverrideApplies) {
  common::Rng rng(20);
  ScenarioSpec spec;
  spec.kind = MotionKind::kClick;
  spec.user = UserProfile::sample(0, rng);
  spec.standoff_override_m = 0.05;
  const auto sc = make_scenario(spec, rng);
  EXPECT_DOUBLE_EQ(sc.params.standoff_m, 0.05);
}

TEST(Scenario, WalkingAddsBodySway) {
  common::Rng rng_a(21), rng_b(21);
  ScenarioSpec sitting, walking;
  sitting.kind = walking.kind = MotionKind::kClick;
  sitting.user = walking.user = UserProfile::sample(0, rng_a);
  walking.activity = Activity::kWalking;
  // Re-derive from the same rng seed for comparability.
  common::Rng r1(22), r2(22);
  const auto a = make_scenario(sitting, r1);
  const auto b = make_scenario(walking, r2);
  // During idle the walking scenario's fingertip z moves more.
  double range_a = 0.0, range_b = 0.0;
  double za0 = a.provider(0.0).patches[0].position.z;
  double zb0 = b.provider(0.0).patches[0].position.z;
  for (double t = 0.0; t < 0.3; t += 0.01) {
    range_a = std::max(range_a,
                       std::fabs(a.provider(t).patches[0].position.z - za0));
    range_b = std::max(range_b,
                       std::fabs(b.provider(t).patches[0].position.z - zb0));
  }
  EXPECT_GT(range_b, range_a);
}

// ------------------------------------------------------------ dataset

TEST(Dataset, CollectionProtocolCounts) {
  CollectionConfig config;
  config.users = 2;
  config.sessions = 2;
  config.repetitions = 3;
  config.seed = 23;
  const auto data = DatasetBuilder(config).collect();
  EXPECT_EQ(data.size(), 2u * 2u * 8u * 3u);
  EXPECT_EQ(data.user_ids().size(), 2u);
  EXPECT_EQ(data.session_ids().size(), 2u);
}

TEST(Dataset, DeterministicForSeed) {
  CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 1;
  config.kinds = {MotionKind::kClick};
  config.seed = 24;
  const auto a = DatasetBuilder(config).collect();
  const auto b = DatasetBuilder(config).collect();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.samples[0].trace.sample_count(); ++i)
    EXPECT_DOUBLE_EQ(a.samples[0].trace.channel(0)[i],
                     b.samples[0].trace.channel(0)[i]);
}

TEST(Dataset, SamplesCarryValidGroundTruth) {
  CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 2;
  config.seed = 25;
  const auto data = DatasetBuilder(config).collect();
  for (const auto& s : data.samples) {
    EXPECT_GT(s.gesture_start_s, 0.0);
    EXPECT_GT(s.gesture_end_s, s.gesture_start_s);
    EXPECT_LE(s.gesture_end_s, s.trace.duration_s() + 1e-9);
    EXPECT_GT(s.standoff_m, 0.0);
    EXPECT_EQ(s.trace.channel_count(), 3u);
    if (is_track_aimed(s.kind)) EXPECT_TRUE(s.scroll.has_value());
  }
}

TEST(Dataset, RosterIsStable) {
  CollectionConfig config;
  config.seed = 26;
  DatasetBuilder builder(config);
  const auto a = builder.roster();
  const auto b = builder.roster();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].standoff_m, b[i].standoff_m);
}

TEST(Dataset, GestureStreamBoundsAreOrdered) {
  CollectionConfig config;
  config.seed = 27;
  const std::vector<MotionKind> kinds{MotionKind::kClick,
                                      MotionKind::kScrollUp,
                                      MotionKind::kCircle};
  const auto stream = make_gesture_stream(config, kinds, 28);
  ASSERT_EQ(stream.gesture_bounds.size(), 3u);
  std::size_t prev_end = 0;
  for (const auto& [b, e] : stream.gesture_bounds) {
    EXPECT_GE(b, prev_end);
    EXPECT_GT(e, b);
    EXPECT_LE(e, stream.trace.sample_count());
    prev_end = e;
  }
}

TEST(Dataset, InvalidConfigThrows) {
  CollectionConfig config;
  config.users = 0;
  EXPECT_THROW(DatasetBuilder{config}, PreconditionError);
}

}  // namespace
}  // namespace airfinger::synth
