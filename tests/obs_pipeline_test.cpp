// End-to-end observability determinism (DESIGN.md §13).
//
// The instrumentation contract has two halves, both verified here against
// real replays of synthesized gesture streams:
//
//   * record-only — a session's emitted GestureEvents are bit-identical
//     with stage spans enabled, runtime-disabled, and at any host thread
//     count; observability never feeds back into a decision;
//   * deterministic under TickClock — with a tick clock injected, the
//     structured event log, the metric registry, and both exposition
//     renderings are byte-identical across runs and across AF_THREADS
//     settings, because each session's clock-read sequence is a pure
//     function of its input stream.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/multi_session_host.hpp"
#include "core/session.hpp"
#include "core/trainer.hpp"
#include "obs/exposition.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

/// Small shared bundle (same scale as the golden-replay reference).
const std::shared_ptr<const core::ModelBundle>& test_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

/// One deterministic gesture-dense stream per lane index.
sensor::MultiChannelTrace lane_trace(std::size_t lane) {
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,   synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown,
  };
  synth::CollectionConfig config;
  config.users = 1;
  config.seed = 0x0B5 + 17 * lane;
  return synth::make_gesture_stream(config, mix, config.seed).trace;
}

/// Replays `trace` through a fresh instrumented session under a TickClock
/// and renders everything observability produced as one text blob.
std::string traced_replay(const sensor::MultiChannelTrace& trace,
                          bool spans_enabled) {
  core::Session session(test_bundle());
  session.observability().set_clock(std::make_unique<obs::TickClock>(1000));
  session.observability().set_spans_enabled(spans_enabled);
  session.observability().set_sample_every(1);  // full-fidelity replay
  const auto events = session.process_trace(trace);

  std::ostringstream os;
  os << "events " << events.size() << "\n";
  obs::write_prometheus(os, session.observability().registry().snapshot());
  session.observability().dump_events(os);
  return os.str();
}

std::string serialize_emissions(const std::vector<core::GestureEvent>& events) {
  std::ostringstream os;
  for (const auto& e : events) os << e.describe() << "\n";
  return os.str();
}

// ---------------------------------------------------------------- session

TEST(ObsPipeline, TickClockTraceIsByteIdenticalAcrossRuns) {
  const sensor::MultiChannelTrace trace = lane_trace(0);
  const std::string first = traced_replay(trace, true);
  const std::string second = traced_replay(trace, true);
  EXPECT_EQ(first, second);
  // The trace actually contains signal: frames flowed, stages were timed,
  // structured events were recorded.
  EXPECT_NE(first.find("af_frames_total " +
                       std::to_string(trace.sample_count())),
            std::string::npos);
  EXPECT_NE(first.find("segment_open"), std::string::npos);
  EXPECT_NE(first.find("emit"), std::string::npos);
}

TEST(ObsPipeline, EmissionsAreIdenticalWithSpansOnOrOff) {
  const sensor::MultiChannelTrace trace = lane_trace(1);

  core::Session on(test_bundle());
  on.observability().set_spans_enabled(true);
  const auto events_on = on.process_trace(trace);

  core::Session off(test_bundle());
  off.observability().set_spans_enabled(false);
  const auto events_off = off.process_trace(trace);

  ASSERT_GT(events_on.size(), 0u);
  EXPECT_EQ(serialize_emissions(events_on), serialize_emissions(events_off));

  // The runtime switch silences the stage histograms but not the counters
  // or the structured log — those are part of the session's accounting.
  const auto snap_off = off.observability().registry().snapshot();
  EXPECT_EQ(snap_off.find("af_stage_ingest_ns")->count, 0u);
  EXPECT_EQ(snap_off.find("af_frames_total")->count, trace.sample_count());
}

TEST(ObsPipeline, CountersReconcileWithEmittedEvents) {
  const sensor::MultiChannelTrace trace = lane_trace(2);
  core::Session session(test_bundle());
  session.observability().set_sample_every(1);
  const auto events = session.process_trace(trace);

  const auto snap = session.observability().registry().snapshot();
  EXPECT_EQ(snap.find("af_frames_total")->count, trace.sample_count());
  std::uint64_t emitted = snap.find("af_events_detect_total")->count +
                          snap.find("af_events_scroll_total")->count +
                          snap.find("af_events_direction_total")->count +
                          snap.find("af_events_rejected_total")->count;
  EXPECT_EQ(emitted, events.size());
  const std::uint64_t opened = snap.find("af_segments_opened_total")->count;
  const std::uint64_t closed = snap.find("af_segments_closed_total")->count;
  const std::uint64_t abandoned =
      snap.find("af_segments_abandoned_total")->count;
  EXPECT_GT(opened, 0u);
  EXPECT_EQ(opened, closed + abandoned);
  // Health view and registry view are the same numbers.
  EXPECT_EQ(session.health().frames, trace.sample_count());

  // With spans compiled in, enabled, and sampling at full fidelity, the
  // per-frame stage was timed on every frame; stage histograms are empty
  // when compiled out.
  const auto* ingest = snap.find("af_stage_ingest_ns");
#if AF_OBS_SPANS_ENABLED
  EXPECT_EQ(ingest->count, trace.sample_count());
#else
  EXPECT_EQ(ingest->count, 0u);
#endif
}

TEST(ObsPipeline, PerFrameSpanSamplingIsDeterministic) {
  const sensor::MultiChannelTrace trace = lane_trace(1);
  core::Session sampled(test_bundle());
  ASSERT_EQ(sampled.observability().sample_every(),
            obs::PipelineObservability::kDefaultSampleEvery);
  const auto events_sampled = sampled.process_trace(trace);

  core::Session full(test_bundle());
  full.observability().set_sample_every(1);
  const auto events_full = full.process_trace(trace);

  // Sampling only thins the per-frame stage histograms — emissions,
  // counters, and the structured event log are untouched by it.
  ASSERT_GT(events_full.size(), 0u);
  EXPECT_EQ(serialize_emissions(events_sampled),
            serialize_emissions(events_full));

#if AF_OBS_SPANS_ENABLED
  // 1-in-N on the frame counter, first frame sampled: exactly ceil(n / N)
  // ingest observations, bit-stable across runs.
  const std::uint64_t n = trace.sample_count();
  const std::uint64_t every = obs::PipelineObservability::kDefaultSampleEvery;
  const auto snap = sampled.observability().registry().snapshot();
  EXPECT_EQ(snap.find("af_stage_ingest_ns")->count, (n + every - 1) / every);
#endif
}

TEST(ObsPipeline, SessionResetClearsObservability) {
  const sensor::MultiChannelTrace trace = lane_trace(0);
  core::Session session(test_bundle());
  (void)session.process_trace(trace);
  ASSERT_GT(session.observability().registry().snapshot()
                .find("af_frames_total")->count, 0u);
  session.reset();
  const auto snap = session.observability().registry().snapshot();
  EXPECT_EQ(snap.find("af_frames_total")->count, 0u);
  EXPECT_EQ(session.observability().ring().size(), 0u);
  // And a fresh replay after reset matches a fresh session bit-for-bit.
  const auto after_reset = session.process_trace(trace);
  core::Session fresh(test_bundle());
  EXPECT_EQ(serialize_emissions(after_reset),
            serialize_emissions(fresh.process_trace(trace)));
}

// ------------------------------------------------------------------- host

/// Runs a 4-lane host at `threads` pool width with TickClocks injected and
/// returns (drained events text, aggregate metrics prometheus text).
std::pair<std::string, std::string> host_run(std::size_t threads) {
  common::ScopedThreads scoped(threads);
  std::vector<sensor::MultiChannelTrace> traces;
  for (std::size_t lane = 0; lane < 4; ++lane)
    traces.push_back(lane_trace(lane));

  core::MultiSessionHost host(test_bundle(), traces.size());
  for (std::size_t lane = 0; lane < traces.size(); ++lane)
    host.mutable_session(lane).observability().set_clock(
        std::make_unique<obs::TickClock>(1000));

  const auto events = host.run_round_robin(traces);
  std::ostringstream os;
  for (const auto& e : events)
    os << e.session << " " << e.event.describe() << "\n";
  return {os.str(), obs::to_prometheus(host.aggregate_metrics())};
}

TEST(ObsPipeline, HostTraceAndMetricsAreThreadCountInvariant) {
  const auto [events1, metrics1] = host_run(1);
  const auto [events4, metrics4] = host_run(4);
  EXPECT_GT(events1.size(), 0u);
  EXPECT_EQ(events1, events4);
  EXPECT_EQ(metrics1, metrics4);
  // Host-level series are present in the exposition.
  EXPECT_NE(metrics1.find("af_host_sessions 4"), std::string::npos);
}

}  // namespace
}  // namespace airfinger
