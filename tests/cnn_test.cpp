// Tests for the 1-D CNN sequence classifier.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/cnn.hpp"

namespace airfinger::ml {
namespace {

std::vector<double> wave(std::size_t n, double cycles, double phase) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = (std::sin(2.0 * std::numbers::pi * cycles * i / n + phase) +
            1.5) *
           20.0;
  return x;
}

TEST(Cnn, LearnsToSeparateFrequencies) {
  common::Rng rng(1);
  std::vector<std::vector<double>> series;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    series.push_back(wave(60 + rng.below(20), 1.0, rng.uniform(0, 0.6)));
    labels.push_back(0);
    series.push_back(wave(60 + rng.below(20), 5.0, rng.uniform(0, 0.6)));
    labels.push_back(1);
  }
  CnnClassifier cnn;
  cnn.fit(series, labels);
  EXPECT_EQ(cnn.num_classes(), 2);
  common::Rng test_rng(2);
  int correct = 0;
  for (int i = 0; i < 30; ++i) {
    const int label = i % 2;
    const auto q =
        wave(70, label == 0 ? 1.0 : 5.0, test_rng.uniform(0, 0.6));
    if (cnn.predict(q) == label) ++correct;
  }
  EXPECT_GE(correct, 26);
}

TEST(Cnn, ProbabilitiesSumToOne) {
  common::Rng rng(3);
  std::vector<std::vector<double>> series;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    series.push_back(wave(64, 1.0 + (i % 3), rng.uniform(0, 1)));
    labels.push_back(i % 3);
  }
  CnnClassifier cnn;
  cnn.fit(series, labels);
  const auto p = cnn.predict_proba(series[0]);
  ASSERT_EQ(p.size(), 3u);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Cnn, DeterministicForSeed) {
  common::Rng rng(4);
  std::vector<std::vector<double>> series;
  std::vector<int> labels;
  for (int i = 0; i < 16; ++i) {
    series.push_back(wave(64, i % 2 ? 4.0 : 1.0, rng.uniform(0, 1)));
    labels.push_back(i % 2);
  }
  CnnClassifierConfig config;
  config.epochs = 5;
  CnnClassifier a(config), b(config);
  a.fit(series, labels);
  b.fit(series, labels);
  for (const auto& s : series)
    EXPECT_EQ(a.predict_proba(s), b.predict_proba(s));
}

TEST(Cnn, PreconditionsEnforced) {
  CnnClassifier cnn;
  EXPECT_THROW(cnn.predict(wave(30, 1.0, 0.0)), PreconditionError);
  EXPECT_THROW(cnn.fit({}, {}), PreconditionError);
  // Single-class training is rejected.
  std::vector<std::vector<double>> one{wave(30, 1.0, 0.0)};
  EXPECT_THROW(cnn.fit(one, {0}), PreconditionError);
  CnnClassifierConfig bad;
  bad.kernel = 1;
  EXPECT_THROW(CnnClassifier{bad}, PreconditionError);
}

}  // namespace
}  // namespace airfinger::ml
