// Unit tests for the airFinger core pipeline components.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/ascending.hpp"
#include "core/data_processor.hpp"
#include "core/detect_recognizer.hpp"
#include "core/interference_filter.hpp"
#include "core/training.hpp"
#include "core/type_router.hpp"
#include "core/zebra.hpp"

namespace airfinger::core {
namespace {

/// Builds a ProcessedTrace directly from per-channel ΔRSS² vectors.
ProcessedTrace make_processed(std::vector<std::vector<double>> channels,
                              double rate = 100.0) {
  ProcessedTrace p;
  p.sample_rate_hz = rate;
  p.energy.assign(channels.front().size(), 0.0);
  for (const auto& ch : channels)
    for (std::size_t i = 0; i < ch.size(); ++i) p.energy[i] += ch[i];
  p.delta_rss2 = std::move(channels);
  return p;
}

/// Gaussian energy bump centred at `centre` with the given width/height.
std::vector<double> bump(std::size_t n, double centre, double width,
                         double height) {
  std::vector<double> x(n, 0.5);
  for (std::size_t i = 0; i < n; ++i)
    x[i] += height * std::exp(-0.5 * std::pow(
                                  (static_cast<double>(i) - centre) / width,
                                  2.0));
  return x;
}

// ------------------------------------------------------ data processor

TEST(DataProcessor, WindowSamplesAtLeastOne) {
  DataProcessor proc;
  EXPECT_EQ(proc.window_samples(100.0), 1u);  // 10 ms at 100 Hz
  DataProcessorConfig config;
  config.sbc_window_s = 0.05;
  DataProcessor proc2(config);
  EXPECT_EQ(proc2.window_samples(100.0), 5u);
}

TEST(DataProcessor, ProcessComputesPerChannelSbc) {
  sensor::MultiChannelTrace trace(2, 100.0);
  trace.push_frame(std::vector<double>{10.0, 20.0});
  trace.push_frame(std::vector<double>{13.0, 20.0});
  const auto p = DataProcessor{}.process(trace);
  EXPECT_DOUBLE_EQ(p.delta_rss2[0][1], 9.0);
  EXPECT_DOUBLE_EQ(p.delta_rss2[1][1], 0.0);
  EXPECT_DOUBLE_EQ(p.energy[1], 9.0);
}

TEST(DataProcessor, SelectSegmentPrefersOverlap) {
  ProcessedTrace p;
  p.segments = {{10, 30}, {50, 90}, {120, 140}};
  const auto seg = DataProcessor::select_segment(p, 55, 85);
  EXPECT_EQ(seg.begin, 50u);
  EXPECT_EQ(seg.end, 90u);
}

TEST(DataProcessor, SelectSegmentFallsBackToLongest) {
  ProcessedTrace p;
  p.segments = {{10, 20}, {50, 95}};
  const auto seg = DataProcessor::select_segment(p, 200, 220);  // no overlap
  EXPECT_EQ(seg.begin, 50u);
}

TEST(DataProcessor, SelectSegmentUsesTruthWhenEmpty) {
  ProcessedTrace p;
  const auto seg = DataProcessor::select_segment(p, 5, 25);
  EXPECT_EQ(seg.begin, 5u);
  EXPECT_EQ(seg.end, 25u);
}

// ------------------------------------------------------ ascending/timing

TEST(Ascending, FindsOnsetsOfActiveChannels) {
  std::vector<double> quiet(100, 0.1);
  auto active = bump(100, 50, 8, 100.0);
  const std::span<const double> windows[] = {active, quiet};
  const auto pts = find_ascending_points(windows);
  ASSERT_TRUE(pts.ascending[0].has_value());
  EXPECT_FALSE(pts.ascending[1].has_value());  // silent channel
  EXPECT_GT(*pts.ascending[0], 20u);
  EXPECT_LT(*pts.ascending[0], 50u);
}

TEST(Ascending, PadSegmentClamps) {
  const auto padded = pad_segment({10, 20}, 25, 0.1, 100.0);
  EXPECT_EQ(padded.begin, 0u);
  EXPECT_EQ(padded.end, 25u);
}

TEST(SegmentTiming, SimultaneousChannelsHaveZeroAsymmetrySweep) {
  // All channels scaled copies of the same bump: a fixed-spot gesture.
  auto a = bump(120, 60, 12, 50.0);
  auto b = bump(120, 60, 12, 100.0);
  auto c = bump(120, 60, 12, 70.0);
  const std::span<const double> windows[] = {a, b, c};
  const auto t = segment_timing(windows, 100.0);
  EXPECT_LT(std::fabs(t.asymmetry_delta), 0.1);
}

TEST(SegmentTiming, OrderedChannelsSweepAsymmetry) {
  auto a = bump(120, 30, 10, 100.0);
  auto b = bump(120, 60, 10, 100.0);
  auto c = bump(120, 90, 10, 100.0);
  const std::span<const double> windows[] = {a, b, c};
  const auto t = segment_timing(windows, 100.0);
  EXPECT_GT(t.asymmetry_delta, 0.6);  // P1-first → scroll up direction
  EXPECT_EQ(t.asymmetry_reversals, 0u);
  EXPECT_GT(t.transition_s, 0.05);
}

TEST(SegmentTiming, ReversedOrderFlipsSign) {
  auto a = bump(120, 90, 10, 100.0);
  auto b = bump(120, 60, 10, 100.0);
  auto c = bump(120, 30, 10, 100.0);
  const std::span<const double> windows[] = {a, b, c};
  const auto t = segment_timing(windows, 100.0);
  EXPECT_LT(t.asymmetry_delta, -0.6);
}

TEST(SegmentTiming, CyclicPatternCountsReversals) {
  // Energy bounces: P1 bump, P3 bump, P1 bump again (a back-and-forth).
  std::vector<double> a(160, 0.5), c(160, 0.5);
  auto add_bump = [](std::vector<double>& x, double centre) {
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] += 100.0 * std::exp(-0.5 * std::pow(
                                   (static_cast<double>(i) - centre) / 8.0,
                                   2.0));
  };
  add_bump(a, 30);
  add_bump(c, 70);
  add_bump(a, 110);
  std::vector<double> b(160, 1.0);
  const std::span<const double> windows[] = {a, b, c};
  const auto t = segment_timing(windows, 100.0);
  EXPECT_GE(t.asymmetry_reversals, 1u);
}

// ------------------------------------------------------ router

TEST(TypeRouter, ScrollPatternRoutesTrack) {
  auto a = bump(120, 30, 10, 200.0);
  auto b = bump(120, 60, 10, 200.0);
  auto c = bump(120, 90, 10, 200.0);
  const auto p = make_processed({a, b, c});
  const TypeRouter router;
  EXPECT_EQ(router.route(p, {0, 120}), GestureCategory::kTrackAimed);
}

TEST(TypeRouter, SimultaneousPatternRoutesDetect) {
  auto a = bump(120, 60, 12, 80.0);
  auto b = bump(120, 60, 12, 160.0);
  auto c = bump(120, 60, 12, 120.0);
  const auto p = make_processed({a, b, c});
  const TypeRouter router;
  EXPECT_EQ(router.route(p, {0, 120}), GestureCategory::kDetectAimed);
}

TEST(TypeRouter, EmptySignalRoutesDetect) {
  std::vector<double> quiet(60, 0.0);
  const auto p = make_processed({quiet, quiet, quiet});
  const TypeRouter router;
  EXPECT_EQ(router.route(p, {0, 60}), GestureCategory::kDetectAimed);
}

// ------------------------------------------------------ ZEBRA

TEST(Zebra, TracksScrollUpDirectionAndVelocity) {
  auto a = bump(120, 30, 10, 200.0);
  auto b = bump(120, 60, 10, 200.0);
  auto c = bump(120, 90, 10, 200.0);
  const auto p = make_processed({a, b, c});
  const ZebraTracker zebra;
  const auto est = zebra.track(p, {0, 120});
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->direction, 1.0);
  EXPECT_GT(est->velocity_mps, 0.0);
  ASSERT_TRUE(est->delta_t_s.has_value());
  EXPECT_FALSE(est->used_experience_velocity);
}

TEST(Zebra, ScrollDownIsNegative) {
  auto a = bump(120, 90, 10, 200.0);
  auto b = bump(120, 60, 10, 200.0);
  auto c = bump(120, 30, 10, 200.0);
  const auto p = make_processed({a, b, c});
  const auto est = ZebraTracker{}.track(p, {0, 120});
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->direction, -1.0);
}

TEST(Zebra, FasterTransitGivesHigherVelocity) {
  // Same geometry, half the time offset between outer bumps.
  auto slow_a = bump(200, 40, 10, 200.0);
  auto slow_c = bump(200, 160, 10, 200.0);
  auto fast_a = bump(200, 80, 10, 200.0);
  auto fast_c = bump(200, 120, 10, 200.0);
  std::vector<double> mid(200, 1.0);
  const auto slow = ZebraTracker{}.track(
      make_processed({slow_a, mid, slow_c}), {0, 200});
  const auto fast = ZebraTracker{}.track(
      make_processed({fast_a, mid, fast_c}), {0, 200});
  ASSERT_TRUE(slow && fast);
  EXPECT_GT(fast->velocity_mps, slow->velocity_mps);
}

TEST(Zebra, OnlyP1UsesExperienceVelocity) {
  auto a = bump(120, 50, 10, 300.0);
  std::vector<double> quiet(120, 0.2);
  const auto p = make_processed({a, quiet, quiet});
  const auto est = ZebraTracker{}.track(p, {0, 120});
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->direction, 1.0);
  EXPECT_TRUE(est->used_experience_velocity);
  EXPECT_DOUBLE_EQ(est->velocity_mps,
                   ZebraConfig{}.experience_velocity_mps);
}

TEST(Zebra, NothingRisenReturnsNullopt) {
  std::vector<double> quiet(60, 0.0);
  const auto p = make_processed({quiet, quiet, quiet});
  EXPECT_FALSE(ZebraTracker{}.track(p, {0, 60}).has_value());
}

TEST(Zebra, DisplacementFollowsEquationFive) {
  ScrollEstimate est;
  est.direction = -1.0;
  est.velocity_mps = 0.08;
  est.duration_s = 0.5;
  EXPECT_DOUBLE_EQ(est.displacement_at(0.25), -0.02);
  // min{t, T}: saturates at T.
  EXPECT_DOUBLE_EQ(est.displacement_at(2.0), -0.04);
  EXPECT_DOUBLE_EQ(est.final_displacement(), -0.04);
}

// ------------------------------------------------------ training utils

TEST(Training, LabelSchemes) {
  using synth::MotionKind;
  EXPECT_EQ(label_for(MotionKind::kCircle, LabelScheme::kDetectSix), 0);
  EXPECT_EQ(label_for(MotionKind::kScrollUp, LabelScheme::kDetectSix), -1);
  EXPECT_EQ(label_for(MotionKind::kScrollUp, LabelScheme::kAllEight), 6);
  EXPECT_EQ(label_for(MotionKind::kScratch, LabelScheme::kAllEight), -1);
  EXPECT_EQ(
      label_for(MotionKind::kScratch, LabelScheme::kGestureVsNonGesture), 0);
  EXPECT_EQ(
      label_for(MotionKind::kRub, LabelScheme::kGestureVsNonGesture), 1);
  EXPECT_EQ(class_count(LabelScheme::kDetectSix), 6);
  EXPECT_EQ(class_names(LabelScheme::kAllEight).size(), 8u);
}

TEST(Training, BuildFeatureSetShapes) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 2;
  config.seed = 31;
  const auto data = synth::DatasetBuilder(config).collect();
  const DataProcessor proc;
  const features::FeatureBank bank;
  const auto set = build_feature_set(data, proc, bank,
                                     LabelScheme::kAllEight,
                                     GroupScheme::kUser);
  EXPECT_GT(set.size(), 0u);
  EXPECT_EQ(set.feature_count(), bank.feature_count());
  EXPECT_EQ(set.groups.size(), set.size());
}

// ------------------------------------------------------ recognizer/filter

TEST(DetectRecognizer, FitSelectsAndPredicts) {
  synth::CollectionConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 6;
  config.kinds = {synth::MotionKind::kClick, synth::MotionKind::kRub};
  config.seed = 32;
  const auto data = synth::DatasetBuilder(config).collect();
  const DataProcessor proc;

  DetectRecognizerConfig rc;
  rc.selected_features = 10;
  DetectRecognizer rec(rc);
  const auto set = build_feature_set(data, proc, rec.bank(),
                                     LabelScheme::kDetectSix);
  rec.fit(set);
  EXPECT_TRUE(rec.is_fitted());
  EXPECT_EQ(rec.selected_features().size(), 10u);

  // Training-set accuracy should be near-perfect for a forest.
  int correct = 0;
  for (std::size_t i = 0; i < set.size(); ++i)
    if (rec.predict(set.features[i]) == set.labels[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(set.size()),
            0.95);
}

TEST(DetectRecognizer, PredictBeforeFitThrows) {
  DetectRecognizer rec;
  std::vector<double> row(rec.bank().feature_count(), 0.0);
  EXPECT_THROW(rec.predict(row), PreconditionError);
}

TEST(InterferenceFilter, SeparatesGesturesFromNonGestures) {
  synth::CollectionConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 8;
  config.kinds = {synth::MotionKind::kClick, synth::MotionKind::kCircle,
                  synth::MotionKind::kScratch, synth::MotionKind::kExtend};
  config.seed = 33;
  const auto data = synth::DatasetBuilder(config).collect();
  const DataProcessor proc;
  const features::FeatureBank bank;
  const auto set = build_feature_set(data, proc, bank,
                                     LabelScheme::kGestureVsNonGesture);

  InterferenceFilter filter(bank);
  filter.fit(set);
  EXPECT_TRUE(filter.is_fitted());
  EXPECT_EQ(filter.feature_indices().size(), 9u);
  int correct = 0;
  for (std::size_t i = 0; i < set.size(); ++i)
    if (filter.is_gesture(set.features[i]) == (set.labels[i] == 1))
      ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(set.size()),
            0.9);
}

TEST(InterferenceFilter, RejectsNonBinaryLabels) {
  const features::FeatureBank bank;
  InterferenceFilter filter(bank);
  ml::SampleSet set;
  set.features = {std::vector<double>(bank.feature_count(), 0.0)};
  set.labels = {2};
  EXPECT_THROW(filter.fit(set), PreconditionError);
}

}  // namespace
}  // namespace airfinger::core
