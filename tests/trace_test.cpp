// Gesture-scoped tracing, flight recorder, and trace export (DESIGN.md
// §18).
//
// The tracing layer's contract mirrors the rest of the observability
// stack:
//
//   * record-only — emissions are byte-identical with tracing runtime-on
//     and runtime-off (the compile-gate half is pinned by the golden-trace
//     guard in tools/run_checks.sh --trace-smoke, which diffs emissions
//     across -DAF_OBS_TRACE trees);
//   * deterministic under TickClock — the exported Chrome trace-event
//     JSON is byte-identical across runs and across host shard counts,
//     because the trace layer adds no clock reads of its own;
//   * alloc-free after construction — recording, finalizing, and flight
//     capture are struct copies into preallocated storage (pinned by
//     bench_inference's allocs/frame ledger).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_session_host.hpp"
#include "core/session.hpp"
#include "core/trainer.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "sensor/fault_injector.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

/// Small shared bundle (same scale as the golden-replay reference).
const std::shared_ptr<const core::ModelBundle>& test_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

/// One deterministic gesture-dense stream per lane index.
sensor::MultiChannelTrace lane_trace(std::size_t lane) {
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle,   synth::MotionKind::kClick,
      synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown,
  };
  synth::CollectionConfig config;
  config.users = 1;
  config.seed = 0x7AC3 + 23 * lane;
  return synth::make_gesture_stream(config, mix, config.seed).trace;
}

std::string serialize_emissions(const std::vector<core::GestureEvent>& events) {
  std::ostringstream os;
  for (const auto& e : events) os << e.describe() << "\n";
  return os.str();
}

/// Replays `streams` lanes through a host at `shards` and returns the
/// Chrome trace-event JSON of every completed gesture trace. Sessions run
/// under TickClock at full span fidelity.
std::string hosted_chrome_trace(std::size_t streams, std::size_t shards) {
  std::vector<sensor::MultiChannelTrace> traces;
  for (std::size_t s = 0; s < streams; ++s) traces.push_back(lane_trace(s));
  core::HostConfig config;
  config.shards = shards;
  core::MultiSessionHost host(test_bundle(), streams,
                              test_bundle()->config().fault_policy, config);
  for (std::size_t s = 0; s < streams; ++s) {
    auto& obs = host.mutable_session(s).observability();
    obs.set_sample_every(1);
    obs.set_clock(std::make_unique<obs::TickClock>(1000));
  }
  host.run_round_robin(traces, 37);
  std::vector<obs::SessionTraces> sessions;
  for (std::size_t s = 0; s < streams; ++s)
    sessions.push_back(obs::SessionTraces{
        s, host.session(s).observability().tracer().completed()});
  return obs::to_chrome_trace(sessions);
}

// ------------------------------------------------------- recorder ring

TEST(TraceRecorder, RingOverwritesOldestAndCountsEvictions) {
  obs::TraceRecorder recorder(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.begin(/*frame=*/10 * i, /*begin=*/100 * i, /*t_ns=*/1000 * i);
    recorder.note_close(10 * i + 5, 100 * i + 50, 1000 * i + 500);
    EXPECT_GE(recorder.note_emit(/*type=*/1, 10 * i + 5, 1000 * i + 600),
              0);
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
  EXPECT_EQ(recorder.completed_total(), 5u);
  const auto completed = recorder.completed();
  ASSERT_EQ(completed.size(), 2u);
  // Oldest-first, ids keep counting across evictions.
  EXPECT_EQ(completed[0].trace_id, 4u);
  EXPECT_EQ(completed[1].trace_id, 5u);
  EXPECT_EQ(completed[1].outcome, obs::GestureTrace::Outcome::kEmitted);
  EXPECT_EQ(completed[1].e2e_ns(), 600);
  ASSERT_NE(recorder.latest(), nullptr);
  EXPECT_EQ(recorder.latest()->trace_id, 5u);
}

TEST(TraceRecorder, MidSegmentEmitIsAMarkerNotAFinalization) {
  obs::TraceRecorder recorder;
  recorder.begin(1, 10, 1000);
  // Early-direction emission while the segment is still open.
  EXPECT_EQ(recorder.note_emit(/*type=*/3, 4, 1400), -1);
  EXPECT_TRUE(recorder.active());
  EXPECT_EQ(recorder.active_trace().mark_count, 1u);
  recorder.note_close(9, 90, 1900);
  EXPECT_EQ(recorder.note_emit(/*type=*/1, 9, 2000), 1000);
  EXPECT_FALSE(recorder.active());
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.latest()->mark_count, 2u);
}

// --------------------------------------------------- event-driven routing

#if AF_OBS_TRACE_ENABLED
TEST(TraceRouting, RecordedLifecycleDrivesTheActiveTrace) {
  obs::PipelineObservability obs;
  obs.set_clock(std::make_unique<obs::TickClock>(1000));
  using Kind = obs::PipelineEvent::Kind;

  obs.record(Kind::kSegmentOpen, /*frame=*/5, /*begin=*/50);
  ASSERT_TRUE(obs.tracer().active());
  obs.observe_span(obs::Stage::kIngest, 100, 200);
  obs.observe_span(obs::Stage::kDecide, 300, 900);
  obs.record(Kind::kSegmentClose, 9, 50, 90);
  obs.record(Kind::kEmit, 9, 0, 0, /*detail=*/1);

  EXPECT_FALSE(obs.tracer().active());
  ASSERT_EQ(obs.tracer().size(), 1u);
  const obs::GestureTrace& t = *obs.tracer().latest();
  EXPECT_EQ(t.outcome, obs::GestureTrace::Outcome::kEmitted);
  EXPECT_EQ(t.begin, 50u);
  EXPECT_EQ(t.end, 90u);
  EXPECT_EQ(t.frame_span_count, 1u);   // ingest
  EXPECT_EQ(t.decide_span_count, 1u);  // decide
  EXPECT_GT(t.t_emit_ns, t.t_open_ns);

  // The finalizing emission observed the e2e histogram and left an
  // exemplar trace id in the bucket its latency landed in.
  const auto snap = obs.registry().snapshot();
  const auto* e2e = snap.find("af_gesture_e2e_seconds");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, 1u);
  EXPECT_EQ(snap.find("af_gesture_traces_total")->count, 1u);
  std::uint64_t exemplar = 0;
  for (const std::uint64_t id : obs.tracer().exemplars())
    if (id != 0) exemplar = id;
  EXPECT_EQ(exemplar, t.trace_id);
}

TEST(TraceRouting, RuntimeDisabledRecorderStaysSilent) {
  obs::PipelineObservability obs;
  obs.set_trace_enabled(false);
  using Kind = obs::PipelineEvent::Kind;
  obs.record(Kind::kSegmentOpen, 5, 50);
  obs.record(Kind::kSegmentClose, 9, 50, 90);
  obs.record(Kind::kEmit, 9, 0, 0, 1);
  EXPECT_FALSE(obs.tracer().active());
  EXPECT_EQ(obs.tracer().size(), 0u);
  // The structured event log is unaffected by the trace switch.
  EXPECT_EQ(obs.ring().size(), 3u);
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorder, QuarantineEntryLatchesAPostmortem) {
  obs::PipelineObservability obs;
  obs.set_clock(std::make_unique<obs::TickClock>(1000));
  using Kind = obs::PipelineEvent::Kind;
  obs.record(Kind::kSegmentOpen, 3, 30);
  obs.record(Kind::kSegmentReject, 7, 30, 70,
             static_cast<std::uint8_t>(obs::PipelineEvent::Reject::kTooShort));
  obs.record(Kind::kQuarantineEnter, 8);
  ASSERT_TRUE(obs.has_postmortem());
  EXPECT_EQ(obs.flight().reason(), obs::FlightReason::kQuarantine);
  EXPECT_EQ(obs.flight().frame(), 8u);
  EXPECT_EQ(obs.flight().triggers(), 1u);

  std::ostringstream text;
  obs.dump_postmortem(text);
  EXPECT_NE(text.str().find("reason=quarantine"), std::string::npos);
  EXPECT_NE(text.str().find("segment_open"), std::string::npos);
  EXPECT_NE(text.str().find("quarantine_enter"), std::string::npos);

  std::ostringstream json;
  obs.dump_postmortem_json(json);
  EXPECT_NE(json.str().find("\"flight\""), std::string::npos);
  EXPECT_NE(json.str().find("\"reason\": \"quarantine\""),
            std::string::npos);

  // Second trigger only counts; the first capture is retained.
  obs.record(Kind::kQuarantineEnter, 20);
  EXPECT_EQ(obs.flight().triggers(), 2u);
  EXPECT_EQ(obs.flight().frame(), 8u);
}

TEST(FlightRecorder, HostLaneFaultCapturesThePostmortem) {
  auto traces = std::vector<sensor::MultiChannelTrace>{
      lane_trace(0), lane_trace(1), lane_trace(2)};
  sensor::FaultInjectorConfig fault_config;
  fault_config.non_finite_rate = 0.01;
  sensor::FaultInjector injector(fault_config, 31337);
  traces[1] = injector.corrupt(traces[1]);
  ASSERT_FALSE(injector.log().empty());

  core::HostConfig config;
  config.shards = 2;
  // Strict sessions: the corrupt lane throws inside its shard worker.
  core::MultiSessionHost host(test_bundle(), traces.size(),
                              test_bundle()->config().fault_policy, config);
  host.run_round_robin(traces, 37);
  ASSERT_TRUE(host.session_faulted(1));
  const auto& obs = host.session(1).observability();
  ASSERT_TRUE(obs.has_postmortem());
  EXPECT_EQ(obs.flight().reason(), obs::FlightReason::kLaneFault);
  std::ostringstream text;
  obs.dump_postmortem(text);
  EXPECT_NE(text.str().find("reason=lane_fault"), std::string::npos);
  // Healthy siblings hold no capture.
  EXPECT_FALSE(host.session(0).observability().has_postmortem());
  EXPECT_FALSE(host.session(2).observability().has_postmortem());
}

// ------------------------------------------------------ shard telemetry

TEST(ShardTelemetry, DrainedFramesReconcileWithProcessed) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    std::vector<sensor::MultiChannelTrace> traces;
    for (std::size_t s = 0; s < 4; ++s) traces.push_back(lane_trace(s));
    core::HostConfig config;
    config.shards = shards;
    core::MultiSessionHost host(test_bundle(), traces.size(),
                                test_bundle()->config().fault_policy,
                                config);
    host.run_round_robin(traces, 37);
    std::uint64_t drained = 0, lanes = 0;
    for (std::size_t s = 0; s < host.shard_count(); ++s) {
      const core::ShardTelemetry t = host.shard_telemetry(s);
      EXPECT_EQ(t.shard, s);
      EXPECT_GT(t.drain_batches, 0u);
      drained += t.frames_drained;
      lanes += t.lanes;
    }
    EXPECT_EQ(drained, host.frames_processed());
    EXPECT_EQ(lanes, traces.size());

    // The per-shard series ride only the load-series exposition; the
    // default stays shard-invariant.
    EXPECT_EQ(host.aggregate_metrics(false).find("af_shard0_parks_total"),
              nullptr);
    const auto loaded = host.aggregate_metrics(true);
    const auto* drained_series =
        loaded.find("af_shard0_frames_drained_total");
    ASSERT_NE(drained_series, nullptr);
    EXPECT_GT(drained_series->count, 0u);
  }
}
#endif  // AF_OBS_TRACE_ENABLED

// ------------------------------------------------------------ emissions

TEST(TraceGuard, EmissionsAreIdenticalWithTracingOnOrOff) {
  const sensor::MultiChannelTrace trace = lane_trace(1);

  core::Session on(test_bundle());
  on.observability().set_clock(std::make_unique<obs::TickClock>(1000));
  on.observability().set_trace_enabled(true);
  on.observability().set_sample_every(1);
  const auto events_on = on.process_trace(trace);

  core::Session off(test_bundle());
  off.observability().set_clock(std::make_unique<obs::TickClock>(1000));
  off.observability().set_trace_enabled(false);
  off.observability().set_sample_every(1);
  const auto events_off = off.process_trace(trace);

  ASSERT_GT(events_on.size(), 0u);
  EXPECT_EQ(serialize_emissions(events_on), serialize_emissions(events_off));
  // The structured event log and counters are identical too: tracing sits
  // strictly downstream of record().
  std::ostringstream ring_on, ring_off;
  on.observability().dump_events(ring_on);
  off.observability().dump_events(ring_off);
  EXPECT_EQ(ring_on.str(), ring_off.str());
}

// --------------------------------------------------------------- export

TEST(TraceExport, ChromeJsonIsByteIdenticalAcrossRunsAndShardCounts) {
  const std::string inline_run = hosted_chrome_trace(4, 1);
  EXPECT_EQ(inline_run, hosted_chrome_trace(4, 1));  // across runs
  EXPECT_EQ(inline_run, hosted_chrome_trace(4, 2));  // across shard counts
  // Loadable shape, not just stable bytes. The slices themselves only
  // exist when the trace gate is compiled in; with it off the export is
  // a valid-but-empty envelope.
  EXPECT_NE(inline_run.find("\"traceEvents\""), std::string::npos);
#if AF_OBS_TRACE_ENABLED
  EXPECT_NE(inline_run.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(inline_run.find("\"name\":\"gesture\""), std::string::npos);
#endif
}

TEST(TraceExport, EmptySessionsStillRenderValidJson) {
  const std::string empty = obs::to_chrome_trace({});
  EXPECT_NE(empty.find("\"traceEvents\""), std::string::npos);
  const std::string one_empty =
      obs::to_chrome_trace({obs::SessionTraces{3, {}}});
  EXPECT_NE(one_empty.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExport, E2eHistogramIsDeterministicUnderTickClock) {
  const sensor::MultiChannelTrace trace = lane_trace(0);
  const auto replay = [&] {
    core::Session session(test_bundle());
    session.observability().set_clock(
        std::make_unique<obs::TickClock>(1000));
    session.observability().set_sample_every(1);
    session.process_trace(trace);
    std::ostringstream os;
    obs::write_prometheus(os,
                          session.observability().registry().snapshot());
    return os.str();
  };
  const std::string first = replay();
  EXPECT_EQ(first, replay());
  EXPECT_NE(first.find("af_gesture_e2e_seconds"), std::string::npos);
}

}  // namespace
}  // namespace airfinger
