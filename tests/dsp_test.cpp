// Unit tests for the signal-processing layer: SBC, dynamic-threshold
// segmentation, FFT, wavelets, autocorrelation, filters, cross-correlation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dsp/autocorr.hpp"
#include "dsp/dynamic_threshold.hpp"
#include "dsp/fft.hpp"
#include "dsp/filters.hpp"
#include "dsp/sbc.hpp"
#include "dsp/wavelet.hpp"
#include "dsp/xcorr.hpp"

namespace airfinger::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

// ---------------------------------------------------------------- SBC

TEST(Sbc, RemovesConstantOffsetExactly) {
  std::vector<double> x(50, 123.4);
  const auto d = SquareBasedCalculator::apply(x, 1);
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_DOUBLE_EQ(d[i], 0.0);
}

TEST(Sbc, SquaresDifferences) {
  const std::vector<double> x{0, 3, 3, 7};
  const auto d = SquareBasedCalculator::apply(x, 1);
  EXPECT_DOUBLE_EQ(d[0], 0.0);  // warm-up
  EXPECT_DOUBLE_EQ(d[1], 9.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
  EXPECT_DOUBLE_EQ(d[3], 16.0);
}

TEST(Sbc, WindowedDifference) {
  const std::vector<double> x{0, 1, 2, 3, 4, 5};
  const auto d = SquareBasedCalculator::apply(x, 3);
  for (std::size_t i = 3; i < d.size(); ++i) EXPECT_DOUBLE_EQ(d[i], 9.0);
}

TEST(Sbc, StreamMatchesBatch) {
  common::Rng rng(3);
  std::vector<double> x;
  for (int i = 0; i < 200; ++i) x.push_back(rng.uniform(0, 100));
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    const auto batch = SquareBasedCalculator::apply(x, w);
    SquareBasedCalculator stream(w);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_DOUBLE_EQ(stream.push(x[i]), batch[i]) << "w=" << w;
  }
}

TEST(Sbc, ResetClearsState) {
  SquareBasedCalculator s(1);
  s.push(10.0);
  s.push(20.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.push(99.0), 0.0);  // warm-up again
}

TEST(Sbc, EnergySumsChannels) {
  const std::vector<double> a{0, 1, 1};
  const std::vector<double> b{0, 2, 2};
  const std::span<const double> chans[] = {a, b};
  const auto e = sbc_energy(chans, 1);
  EXPECT_DOUBLE_EQ(e[1], 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(e[2], 0.0);
}

TEST(Sbc, SuppressesSmallNoiseRelativeToSignal) {
  // The squaring property (Sec. IV-B-1): a 10× amplitude ratio between
  // S_ges and N_dyn of the same bandwidth becomes 100× in ΔRSS².
  std::vector<double> weak, strong;
  for (int i = 0; i < 500; ++i) {
    weak.push_back(1.0 * std::sin(0.3 * i + 0.7));
    strong.push_back(10.0 * std::sin(0.3 * i));
  }
  const auto dw = SquareBasedCalculator::apply(weak, 1);
  const auto ds = SquareBasedCalculator::apply(strong, 1);
  EXPECT_NEAR(common::mean(ds) / common::mean(dw), 100.0, 1.0);
}

// ------------------------------------------------------ Otsu / segmentation

TEST(Otsu, SeparatesBimodalData) {
  std::vector<double> x;
  common::Rng rng(7);
  for (int i = 0; i < 200; ++i) x.push_back(rng.normal(1.0, 0.1));
  for (int i = 0; i < 100; ++i) x.push_back(rng.normal(8.0, 0.3));
  const double t = otsu_threshold(x);
  EXPECT_GT(t, 2.0);
  EXPECT_LT(t, 7.0);
  const double th = otsu_threshold_hist(x);
  EXPECT_GT(th, 2.0);
  EXPECT_LT(th, 7.0);
}

TEST(Otsu, ConstantInputReturnsMax) {
  const std::vector<double> x(10, 5.0);
  EXPECT_DOUBLE_EQ(otsu_threshold(x), 5.0);
  EXPECT_DOUBLE_EQ(otsu_threshold_hist(x), 5.0);
}

std::vector<double> burst_signal(std::size_t idle1, std::size_t burst,
                                 std::size_t idle2, double level,
                                 common::Rng& rng) {
  std::vector<double> x;
  for (std::size_t i = 0; i < idle1; ++i)
    x.push_back(std::fabs(rng.normal(3, 1)));
  for (std::size_t i = 0; i < burst; ++i)
    x.push_back(level * (0.5 + rng.uniform()));
  for (std::size_t i = 0; i < idle2; ++i)
    x.push_back(std::fabs(rng.normal(3, 1)));
  return x;
}

TEST(Segmenter, DetectsSingleBurst) {
  common::Rng rng(1);
  const auto x = burst_signal(100, 40, 100, 2000.0, rng);
  const auto segs = segment_signal(x, {});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_NEAR(static_cast<double>(segs[0].begin), 100.0, 12.0);
  EXPECT_NEAR(static_cast<double>(segs[0].end), 140.0, 15.0);
}

TEST(Segmenter, NoSegmentsOnPureNoise) {
  common::Rng rng(2);
  std::vector<double> x;
  for (int i = 0; i < 400; ++i) x.push_back(std::fabs(rng.normal(3, 1)));
  EXPECT_TRUE(segment_signal(x, {}).empty());
}

TEST(Segmenter, MergesBurstsWithinTe) {
  common::Rng rng(3);
  std::vector<double> x = burst_signal(100, 30, 10, 2000.0, rng);
  const auto more = burst_signal(0, 30, 100, 2000.0, rng);
  x.insert(x.end(), more.begin(), more.end());
  // Two bursts separated by 10 samples (0.1 s) < t_e: one gesture.
  const auto segs = segment_signal(x, {});
  EXPECT_EQ(segs.size(), 1u);
}

TEST(Segmenter, KeepsDistantBurstsSeparate) {
  common::Rng rng(4);
  std::vector<double> x = burst_signal(100, 30, 60, 2000.0, rng);
  const auto more = burst_signal(0, 30, 100, 2000.0, rng);
  x.insert(x.end(), more.begin(), more.end());
  // Gap of 0.6 s >> t_e.
  const auto segs = segment_signal(x, {});
  EXPECT_EQ(segs.size(), 2u);
}

TEST(Segmenter, DiscardsShortBlips) {
  common::Rng rng(5);
  // 5-sample blip < min_duration (12 samples at 100 Hz).
  const auto x = burst_signal(100, 5, 100, 2000.0, rng);
  EXPECT_TRUE(segment_signal(x, {}).empty());
}

TEST(Segmenter, StreamingDetectsSameBurst) {
  common::Rng rng(6);
  const auto x = burst_signal(150, 40, 150, 2000.0, rng);
  DynamicThresholdSegmenter seg{SegmenterConfig{}};
  std::vector<Segment> found;
  for (double v : x) {
    if (const auto s = seg.push(v)) found.push_back(*s);
  }
  if (const auto s = seg.flush()) found.push_back(*s);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(static_cast<double>(found[0].begin), 150.0, 15.0);
}

TEST(Segmenter, StreamingQuietOnNoise) {
  common::Rng rng(7);
  DynamicThresholdSegmenter seg{SegmenterConfig{}};
  int segments = 0;
  for (int i = 0; i < 2000; ++i)
    if (seg.push(std::fabs(rng.normal(3, 1)))) ++segments;
  if (seg.flush()) ++segments;
  EXPECT_EQ(segments, 0);
}

TEST(Segmenter, ResetRestoresInitialState) {
  DynamicThresholdSegmenter seg{SegmenterConfig{}};
  for (int i = 0; i < 100; ++i) seg.push(5.0);
  seg.reset();
  EXPECT_EQ(seg.position(), 0u);
  EXPECT_FALSE(seg.in_gesture());
}

// ---------------------------------------------------------------- FFT

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(129), 256u);
}

TEST(Fft, RoundTripInverse) {
  common::Rng rng(8);
  std::vector<std::complex<double>> x(64);
  std::vector<std::complex<double>> original;
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  original = x;
  fft_inplace(x);
  fft_inplace(x, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, SinusoidConcentratesInOneBin) {
  const std::size_t n = 128;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * kPi * 8.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  const auto spec = fft_real(x);
  std::size_t best = 1;
  for (std::size_t k = 1; k < n / 2; ++k)
    if (std::abs(spec[k]) > std::abs(spec[best])) best = k;
  EXPECT_EQ(best, 8u);
}

TEST(Fft, ParsevalHolds) {
  common::Rng rng(9);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto spec = fft_real(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (double v : x) time_energy += v * v;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(spec.size()), time_energy,
              1e-9);
}

TEST(Fft, MagnitudesPadShortSignals) {
  const std::vector<double> x{1.0, 2.0};
  const auto mags = fft_magnitudes(x, 8);
  EXPECT_EQ(mags.size(), 8u);
  EXPECT_GT(mags[0], 0.0);     // DC
  EXPECT_DOUBLE_EQ(mags[7], 0.0);  // beyond available coefficients
}

TEST(Fft, CentroidHigherForFasterSignal) {
  std::vector<double> slow(128), fast(128);
  for (int i = 0; i < 128; ++i) {
    slow[i] = std::sin(2.0 * kPi * 2.0 * i / 128.0);
    fast[i] = std::sin(2.0 * kPi * 30.0 * i / 128.0);
  }
  EXPECT_GT(spectral_centroid(fast), spectral_centroid(slow));
}

TEST(Fft, LowBandRatioDetectsSlowSignal) {
  std::vector<double> slow(128);
  for (int i = 0; i < 128; ++i)
    slow[i] = std::sin(2.0 * kPi * 2.0 * i / 128.0);
  EXPECT_GT(spectral_energy_ratio(slow, 0.2), 0.9);
}

// ---------------------------------------------------------------- wavelets

TEST(Wavelet, RickerNearZeroMean) {
  const auto w = ricker_wavelet(201, 8.0);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-3);
}

TEST(Wavelet, PeakAtCentre) {
  const auto w = ricker_wavelet(101, 10.0);
  EXPECT_EQ(common::argmax(w), 50u);
}

TEST(Wavelet, CwtRespondsAtMatchedScale) {
  // A Gaussian bump of width ~8 responds more to a width-8 wavelet than to
  // width-2.
  std::vector<double> x(128, 0.0);
  for (int i = 0; i < 128; ++i)
    x[i] = std::exp(-0.5 * std::pow((i - 64.0) / 8.0, 2.0));
  const double widths[] = {2.0, 8.0};
  const auto rows = cwt(x, widths);
  double peak2 = 0.0, peak8 = 0.0;
  for (double v : rows[0]) peak2 = std::max(peak2, std::fabs(v));
  for (double v : rows[1]) peak8 = std::max(peak8, std::fabs(v));
  EXPECT_GT(peak8, peak2);
}

// ------------------------------------------------------------ autocorr

TEST(Autocorr, Lag0IsOne) {
  common::Rng rng(10);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.normal();
  EXPECT_NEAR(autocorrelation(x, 0), 1.0, 1e-12);
}

TEST(Autocorr, WhiteNoiseDecorrelated) {
  common::Rng rng(11);
  std::vector<double> x(5000);
  for (auto& v : x) v = rng.normal();
  EXPECT_NEAR(autocorrelation(x, 3), 0.0, 0.05);
}

TEST(Autocorr, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> x(200);
  for (int i = 0; i < 200; ++i) x[i] = std::sin(2.0 * kPi * i / 20.0);
  EXPECT_GT(autocorrelation(x, 20), 0.9);
  EXPECT_LT(autocorrelation(x, 10), -0.9);
}

TEST(Autocorr, PacfOfAr1CutsOffAfterLag1) {
  // AR(1): x[t] = 0.7 x[t-1] + e.
  common::Rng rng(12);
  std::vector<double> x(4000);
  x[0] = rng.normal();
  for (std::size_t i = 1; i < x.size(); ++i)
    x[i] = 0.7 * x[i - 1] + rng.normal();
  const auto p = pacf(x, 5);
  EXPECT_NEAR(p[0], 0.7, 0.05);
  for (std::size_t k = 1; k < 5; ++k) EXPECT_NEAR(p[k], 0.0, 0.06);
}

TEST(Autocorr, ArCoefficientsRecoverAr2) {
  common::Rng rng(13);
  std::vector<double> x(8000);
  x[0] = x[1] = 0.0;
  for (std::size_t i = 2; i < x.size(); ++i)
    x[i] = 0.5 * x[i - 1] - 0.3 * x[i - 2] + rng.normal();
  const auto phi = ar_coefficients(x, 2);
  EXPECT_NEAR(phi[0], 0.5, 0.05);
  EXPECT_NEAR(phi[1], -0.3, 0.05);
}

TEST(Autocorr, ConstantSignalDegenerate) {
  const std::vector<double> x(50, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(x, 1), 0.0);
  const auto p = pacf(x, 3);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------------- filters

TEST(Filters, MovingAverageOfConstantIsConstant) {
  const std::vector<double> x(20, 4.0);
  for (double v : moving_average(x, 5)) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(Filters, MovingAverageSmooths) {
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(i % 2 ? 1.0 : -1.0);
  const auto s = moving_average(x, 9);
  EXPECT_LT(common::stddev(s), common::stddev(x) / 3.0);
}

TEST(Filters, MedianFilterRemovesSpike) {
  std::vector<double> x(21, 1.0);
  x[10] = 100.0;
  const auto f = median_filter(x, 5);
  EXPECT_DOUBLE_EQ(f[10], 1.0);
}

TEST(Filters, ExponentialSmoothConverges) {
  std::vector<double> x(50, 10.0);
  x[0] = 0.0;
  const auto s = exponential_smooth(x, 0.5);
  EXPECT_NEAR(s.back(), 10.0, 1e-6);
}

TEST(Filters, ResampleEndpointsPreserved) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const auto up = resample_linear(x, 9);
  EXPECT_DOUBLE_EQ(up.front(), 0.0);
  EXPECT_DOUBLE_EQ(up.back(), 4.0);
  EXPECT_DOUBLE_EQ(up[4], 2.0);  // midpoint
  const auto down = resample_linear(x, 3);
  EXPECT_DOUBLE_EQ(down[1], 2.0);
}

TEST(Filters, DiffBasics) {
  const std::vector<double> x{1, 4, 2};
  const auto d = diff(x);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -2.0);
}

TEST(Filters, FindPeaksWithSupport) {
  const std::vector<double> x{0, 1, 0, 5, 0, 1, 0};
  const auto p1 = find_peaks(x, 1);
  ASSERT_EQ(p1.size(), 3u);
  const auto p2 = find_peaks(x, 2);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p2[0], 3u);
}

// ---------------------------------------------------------------- xcorr

TEST(Xcorr, DetectsKnownShift) {
  std::vector<double> a(100, 0.0), b(100, 0.0);
  for (int i = 0; i < 100; ++i)
    a[i] = std::exp(-0.5 * std::pow((i - 30.0) / 5.0, 2.0));
  for (int i = 0; i < 100; ++i)
    b[i] = std::exp(-0.5 * std::pow((i - 42.0) / 5.0, 2.0));
  const auto est = best_lag(a, b, 30);
  EXPECT_EQ(est.lag, 12);  // b lags a by 12
  EXPECT_GT(est.correlation, 0.99);
}

TEST(Xcorr, ZeroLagForIdenticalSignals) {
  common::Rng rng(14);
  std::vector<double> a(80);
  for (auto& v : a) v = rng.uniform(-1, 1);
  const auto est = best_lag(a, a, 20);
  EXPECT_EQ(est.lag, 0);
  EXPECT_NEAR(est.correlation, 1.0, 1e-9);
}

TEST(Xcorr, ConstantSignalGivesZeroCorrelation) {
  const std::vector<double> a(50, 1.0);
  const std::vector<double> b(50, 2.0);
  EXPECT_DOUBLE_EQ(correlation_at_lag(a, b, 0), 0.0);
}

}  // namespace
}  // namespace airfinger::dsp
