// 10k-session soak of the sharded serving host (ISSUE 6, satellite 3).
//
// Opt-in: the test body runs only with AF_SOAK=1 in the environment
// (tools/run_checks.sh --soak sets it and runs the `soak` ctest label
// under the TSan tree). Without it the tests GTEST_SKIP immediately, so
// the binary is free to sit in the default suite.
//
// The soak drives ten thousand concurrent sessions — the ROADMAP's
// serving scale — through the sharded host with deliberately tiny ingest
// rings (constant backpressure), a sprinkling of corrupt lanes under the
// strict policy (quarantine churn while neighbours stream), and bounded
// per-stream input so wall-clock stays in CI range. Afterwards it checks
// the global ledger (fed == processed + dropped, frame for frame) and
// bit-identity of sampled lanes against a single standalone Session — the
// single-thread reference — which is the whole determinism claim at scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "sensor/fault_injector.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

bool soak_enabled() {
  const char* env = std::getenv("AF_SOAK");
  return env != nullptr && std::string(env) == "1";
}

const std::shared_ptr<const core::ModelBundle>& trained_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

void expect_events_identical(const std::vector<core::GestureEvent>& a,
                             const std::vector<core::GestureEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    EXPECT_EQ(a[e].time_s, b[e].time_s);
    EXPECT_EQ(a[e].gesture, b[e].gesture);
    EXPECT_EQ(a[e].segment_begin, b[e].segment_begin);
    EXPECT_EQ(a[e].segment_end, b[e].segment_end);
  }
}

TEST(HostSoak, TenThousandSessionsNoDivergenceFromReference) {
  if (!soak_enabled())
    GTEST_SKIP() << "soak disabled; run with AF_SOAK=1 "
                    "(tools/run_checks.sh --soak)";

  constexpr std::size_t kSessions = 10'000;
  constexpr std::size_t kDistinctTraces = 8;  // lane s streams trace s % 8
  constexpr std::size_t kFramesPerStream = 600;  // bounded wall-clock
  constexpr std::size_t kCorruptEvery = 1000;    // lanes 0, 1000, 2000, ...

  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle, synth::MotionKind::kScrollUp,
      synth::MotionKind::kClick, synth::MotionKind::kScrollDown};
  std::vector<sensor::MultiChannelTrace> traces;
  for (std::size_t t = 0; t < kDistinctTraces; ++t) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = 7100 + t;
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
  }
  // One corrupt variant: fed to every kCorruptEvery-th lane, whose strict
  // session must fault and be quarantined without touching neighbours.
  sensor::FaultInjectorConfig fault_config;
  fault_config.non_finite_rate = 0.02;
  sensor::FaultInjector injector(fault_config, 424242);
  const sensor::MultiChannelTrace corrupt = injector.corrupt(traces[0]);
  ASSERT_FALSE(injector.log().empty());

  const auto trace_for = [&](std::size_t lane)
      -> const sensor::MultiChannelTrace& {
    return lane % kCorruptEvery == 0 ? corrupt
                                     : traces[lane % kDistinctTraces];
  };

  const std::size_t channels = trained_bundle()->config().channels;
  core::HostConfig host_config;
  host_config.shards = 8;       // threads regardless of AF_THREADS
  host_config.ring_frames = 16; // tiny: constant backpressure churn
  core::MultiSessionHost host(trained_bundle(), kSessions,
                              trained_bundle()->config().fault_policy,
                              host_config);

  // Interleaved arrival: bursts of 32 frames round-robin across all 10k
  // lanes, overlapping with the shard workers the whole time.
  constexpr std::size_t kBurst = 32;
  std::vector<double> frame(channels);
  std::uint64_t attempted = 0;
  for (std::size_t offset = 0; offset < kFramesPerStream;
       offset += kBurst) {
    for (std::size_t lane = 0; lane < kSessions; ++lane) {
      const sensor::MultiChannelTrace& trace = trace_for(lane);
      const std::size_t limit =
          std::min({offset + kBurst, kFramesPerStream,
                    trace.sample_count()});
      for (std::size_t f = offset; f < limit; ++f) {
        for (std::size_t c = 0; c < channels; ++c)
          frame[c] = trace.channel(c)[f];
        host.feed(lane, frame);
        ++attempted;
      }
    }
  }
  host.finish();

  // Global ledger: every attempted frame is either processed or counted
  // into its quarantined lane's dropped counters — exactly once (refused
  // post-fault feeds land in dropped too; nothing is rejected: admission
  // is kBlock and no lane is retired).
  std::uint64_t dropped = 0;
  std::size_t faulted = 0;
  for (std::size_t lane = 0; lane < kSessions; ++lane) {
    dropped += host.dropped_frames(lane);
    if (host.session_faulted(lane)) ++faulted;
  }
  EXPECT_EQ(host.frames_processed() + dropped, attempted);
  EXPECT_EQ(faulted, kSessions / kCorruptEvery);
  for (std::size_t lane = 0; lane < kSessions; lane += kCorruptEvery)
    EXPECT_TRUE(host.session_faulted(lane)) << "lane " << lane;

  // Sampled bit-identity: healthy lanes must match a standalone Session
  // fed the identical bounded stream on this thread.
  const auto events = host.drain();
  std::vector<std::vector<core::GestureEvent>> per_lane(kSessions);
  for (const auto& e : events) per_lane[e.session].push_back(e.event);

  for (std::size_t lane = 1; lane < kSessions; lane += 997) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    const sensor::MultiChannelTrace& trace = trace_for(lane);
    core::Session reference(trained_bundle());
    std::vector<core::GestureEvent> expected;
    const auto sink = [&expected](const core::GestureEvent& e) {
      expected.push_back(e);
    };
    const std::size_t limit =
        std::min(kFramesPerStream, trace.sample_count());
    for (std::size_t f = 0; f < limit; ++f) {
      for (std::size_t c = 0; c < channels; ++c)
        frame[c] = trace.channel(c)[f];
      reference.push_frame(frame, sink);
    }
    reference.finish(sink);
    expect_events_identical(per_lane[lane], expected);
  }
}

TEST(HostSoak, RejectAdmissionUnderSaturationKeepsExactLedger) {
  if (!soak_enabled())
    GTEST_SKIP() << "soak disabled; run with AF_SOAK=1 "
                    "(tools/run_checks.sh --soak)";

  // kReject at scale: saturate 2k lanes with more input than their rings
  // can hold between epochs. Counts are scheduling-dependent per lane
  // (workers drain concurrently), but the ledger must still balance:
  // accepted == processed, accepted + rejected == attempted.
  constexpr std::size_t kSessions = 2'000;
  constexpr std::size_t kAttemptsPerLane = 64;
  const std::size_t channels = trained_bundle()->config().channels;
  core::HostConfig config;
  config.shards = 4;
  config.ring_frames = 8;
  config.admission = core::Admission::kReject;
  core::MultiSessionHost host(trained_bundle(), kSessions,
                              trained_bundle()->config().fault_policy,
                              config);

  const std::vector<double> frame(channels, 0.01);
  std::uint64_t accepted = 0;
  for (std::size_t round = 0; round < kAttemptsPerLane; ++round)
    for (std::size_t lane = 0; lane < kSessions; ++lane)
      if (host.feed(lane, frame)) ++accepted;
  host.pump();

  std::uint64_t rejected = 0;
  for (std::size_t lane = 0; lane < kSessions; ++lane)
    rejected += host.rejected_frames(lane);
  EXPECT_EQ(host.frames_processed(), accepted);
  EXPECT_EQ(accepted + rejected, kSessions * kAttemptsPerLane);
  EXPECT_GT(accepted, 0u);
}

}  // namespace
}  // namespace airfinger
