// Integration tests: the full airFinger pipeline end-to-end — training on
// synthesized data, offline classification, and the streaming engine.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.hpp"
#include "core/trainer.hpp"
#include "core/training.hpp"
#include "synth/dataset.hpp"

namespace airfinger::core {
namespace {

/// Shared, lazily trained engine: training is the expensive part, so the
/// suite trains once and every test runs against the same models.
AirFinger& shared_engine() {
  static AirFinger engine = [] {
    TrainerConfig config;
    config.users = 4;
    config.sessions = 2;
    config.repetitions = 8;
    config.non_gesture_repetitions = 10;
    config.seed = 1001;
    return build_engine(config);
  }();
  return engine;
}

synth::Dataset test_samples(std::vector<synth::MotionKind> kinds,
                            int repetitions, std::uint64_t seed) {
  synth::CollectionConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = repetitions;
  config.kinds = std::move(kinds);
  config.seed = seed;  // disjoint from the training seed → unseen users
  return synth::DatasetBuilder(config).collect();
}

TEST(Integration, TrainingReportsSelectedFeatures) {
  TrainerConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 4;
  config.seed = 77;
  TrainingReport report;
  AirFinger engine = build_engine(config, &report);
  EXPECT_GT(report.gesture_samples, 0u);
  EXPECT_GT(report.non_gesture_samples, 0u);
  EXPECT_EQ(report.selected_feature_names.size(), 25u);
}

TEST(Integration, ScrollDirectionIsReliable) {
  auto& engine = shared_engine();
  const auto data = test_samples(
      {synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown}, 10,
      2002);
  int correct = 0, total = 0;
  for (const auto& s : data.samples) {
    const auto v = run_sample(engine, s);
    if (!v.scroll) continue;
    ++total;
    if (v.scroll->direction == s.scroll->direction) ++correct;
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Integration, DetectGesturesAreMostlyRecognized) {
  auto& engine = shared_engine();
  const auto data = test_samples({synth::MotionKind::kClick,
                                  synth::MotionKind::kDoubleRub}, 10, 2003);
  int correct = 0;
  for (const auto& s : data.samples) {
    const auto v = run_sample(engine, s);
    if (v.predicted == s.kind) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(data.size()),
            0.6);
}

TEST(Integration, NonGesturesAreMostlyRejected) {
  auto& engine = shared_engine();
  const auto data = test_samples({synth::MotionKind::kScratch}, 10, 2004);
  int rejected_or_missed = 0;
  for (const auto& s : data.samples) {
    const auto v = run_sample(engine, s);
    if (!v.detected || v.rejected) ++rejected_or_missed;
  }
  // The engine biases towards keeping real gestures (rejection_threshold),
  // so unintentional-motion rejection is moderate at the engine level; the
  // paper-protocol binary accuracy is measured in bench_fig14.
  EXPECT_GT(static_cast<double>(rejected_or_missed) /
                static_cast<double>(data.size()),
            0.35);
}

TEST(Integration, StreamingEngineRecognizesGestureMix) {
  auto& engine = shared_engine();
  engine.reset();
  synth::CollectionConfig config;
  config.seed = 2005;
  const std::vector<synth::MotionKind> sequence{
      synth::MotionKind::kClick, synth::MotionKind::kScrollUp,
      synth::MotionKind::kDoubleClick};
  const auto stream = synth::make_gesture_stream(config, sequence, 2006);
  const auto events = engine.process_trace(stream.trace);
  // At least one decisive (non-early) event per gesture region.
  int decisive = 0;
  for (const auto& e : events)
    if (e.type != GestureEvent::Type::kScrollDirection) ++decisive;
  EXPECT_GE(decisive, 2);
}

TEST(Integration, ResetAllowsReprocessing) {
  auto& engine = shared_engine();
  const auto data = test_samples({synth::MotionKind::kClick}, 1, 2007);
  engine.reset();
  const auto a = engine.process_trace(data.samples[0].trace);
  engine.reset();
  const auto b = engine.process_trace(data.samples[0].trace);
  EXPECT_EQ(a.size(), b.size());
}

TEST(Integration, OfflineClassificationMatchesTrainingWindows) {
  auto& engine = shared_engine();
  const auto data = test_samples({synth::MotionKind::kClick}, 4, 2008);
  for (const auto& s : data.samples) {
    const auto events = engine.classify_recording(s.trace);
    for (const auto& e : events) {
      EXPECT_LE(e.segment_begin, e.segment_end);
      EXPECT_LE(e.segment_end, s.trace.sample_count());
    }
  }
}

TEST(Integration, EventDescriptionsAreHumanReadable) {
  auto& engine = shared_engine();
  const auto data = test_samples({synth::MotionKind::kScrollUp}, 8, 2009);
  bool saw_scroll = false;
  for (const auto& s : data.samples) {
    for (const auto& e : engine.classify_recording(s.trace)) {
      const auto text = e.describe();
      EXPECT_FALSE(text.empty());
      if (e.type == GestureEvent::Type::kScrollDetected) {
        saw_scroll = true;
        EXPECT_NE(text.find("scroll"), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(saw_scroll);
}

TEST(Integration, HybridRoutingCanBeDisabled) {
  // Rule-only mode (the paper's exact architecture) must train and run.
  TrainerConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 4;
  config.seed = 2010;
  config.engine.hybrid_routing = false;
  AirFinger engine = build_engine(config);
  const auto data = test_samples({synth::MotionKind::kScrollUp}, 2, 2011);
  for (const auto& s : data.samples)
    EXPECT_NO_THROW(run_sample(engine, s));
}

TEST(Integration, VelocityCorrelatesWithTruth) {
  auto& engine = shared_engine();
  const auto data = test_samples(
      {synth::MotionKind::kScrollUp, synth::MotionKind::kScrollDown}, 16,
      2013);
  std::vector<double> truth, measured;
  for (const auto& s : data.samples) {
    const auto v = run_sample(engine, s);
    if (!v.scroll || v.scroll->used_experience_velocity) continue;
    truth.push_back(s.scroll->mean_velocity_mps);
    measured.push_back(v.scroll->velocity_mps);
  }
  ASSERT_GT(truth.size(), 10u);
  EXPECT_GT(common::pearson(truth, measured), 0.1);
}

TEST(Integration, LongStreamRunsInBoundedMemory) {
  // Feed ~3 history-limits of idle-ish frames plus gestures: the engine
  // must keep producing events and never index behind its compacted
  // history (exercised by the window_view invariants).
  TrainerConfig config;
  config.users = 2;
  config.sessions = 1;
  config.repetitions = 4;
  config.seed = 3001;
  config.engine.history_limit = 1024;
  AirFinger engine = build_engine(config);

  synth::CollectionConfig stream_config;
  stream_config.seed = 3002;
  std::vector<synth::MotionKind> long_sequence;
  for (int i = 0; i < 24; ++i)
    long_sequence.push_back(i % 2 ? synth::MotionKind::kClick
                                  : synth::MotionKind::kScrollUp);
  const auto stream =
      synth::make_gesture_stream(stream_config, long_sequence, 3003);
  ASSERT_GT(stream.trace.sample_count(), 3 * 1024u);
  const auto events = engine.process_trace(stream.trace);
  int decisive = 0;
  for (const auto& e : events)
    if (e.type != GestureEvent::Type::kScrollDirection) ++decisive;
  EXPECT_GE(decisive, 12);  // most of the 24 gestures produce a verdict
}

}  // namespace
}  // namespace airfinger::core
