// Locks the AF_SIMD kernel-layer contract (DESIGN.md §15): every kernel
// above the fast-math divider is bit-identical to the scalar reference on
// every tier this build + CPU supports, across awkward lengths (1..17 and
// a few larger ones) that exercise lane-group tails and edges; the
// fast-math reductions honour their epsilon contract; and the public call
// sites that batch work (goertzel_magnitudes, batched forest traversal,
// FeatureBank extraction, partial moving-average updates) match their
// one-at-a-time references bit for bit.
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.hpp"
#include "common/simd.hpp"
#include "dsp/autocorr.hpp"
#include "dsp/fft.hpp"
#include "dsp/filters.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/wavelet.hpp"
#include "features/bank.hpp"
#include "features/measures.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/random_forest.hpp"

namespace {

using namespace airfinger;

void expect_bits(double a, double b, const std::string& what) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

/// Tiers this build + CPU can actually activate (always includes scalar).
std::vector<simd::Tier> available_tiers() {
  std::vector<simd::Tier> tiers;
  for (const simd::Tier t : {simd::Tier::kScalar, simd::Tier::kSSE2,
                             simd::Tier::kAVX2, simd::Tier::kNEON})
    if (simd::set_tier(t)) tiers.push_back(t);
  simd::set_tier(simd::Tier::kScalar);
  return tiers;
}

/// Restores the detected tier when a test ends, whatever it switched to.
struct TierGuard {
  ~TierGuard() { simd::set_tier(simd::detected_tier()); }
};

const std::vector<std::size_t>& awkward_lengths() {
  static const std::vector<std::size_t> lengths = [] {
    std::vector<std::size_t> v;
    for (std::size_t n = 1; n <= 17; ++n) v.push_back(n);
    v.push_back(96);
    v.push_back(255);
    v.push_back(301);
    return v;
  }();
  return lengths;
}

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  std::vector<double> x(n);
  for (auto& v : x) v = value(rng);
  return x;
}

/// Runs `kernel_call` under every available tier and bit-compares each
/// result vector against the scalar tier's.
template <typename Fn>
void expect_tiers_match(const std::string& what, Fn kernel_call) {
  TierGuard guard;
  ASSERT_TRUE(simd::set_tier(simd::Tier::kScalar));
  const std::vector<double> reference = kernel_call();
  for (const simd::Tier tier : available_tiers()) {
    ASSERT_TRUE(simd::set_tier(tier));
    const std::vector<double> got = kernel_call();
    ASSERT_EQ(reference.size(), got.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      expect_bits(reference[i], got[i],
                  what + " tier=" + simd::tier_name(tier) + " [" +
                      std::to_string(i) + "]");
  }
}

TEST(SimdDispatch, TierOverrideAndDetection) {
  TierGuard guard;
  // Scalar is always available, and the active table reports its tier.
  ASSERT_TRUE(simd::set_tier(simd::Tier::kScalar));
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  // The detected tier must itself be activatable.
  EXPECT_TRUE(simd::set_tier(simd::detected_tier()));
  EXPECT_EQ(simd::active_tier(), simd::detected_tier());
#if AF_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64))
  // SSE2 is part of the x86-64 baseline.
  EXPECT_TRUE(simd::set_tier(simd::Tier::kSSE2));
  EXPECT_FALSE(simd::set_tier(simd::Tier::kNEON));
#endif
#if !AF_SIMD_ENABLED
  // SIMD-off builds expose only the scalar table.
  EXPECT_EQ(simd::detected_tier(), simd::Tier::kScalar);
  EXPECT_FALSE(simd::set_tier(simd::Tier::kSSE2));
  EXPECT_FALSE(simd::set_tier(simd::Tier::kAVX2));
#endif
}

TEST(SimdKernels, AccumulateBitIdenticalAcrossTiers) {
  for (const std::size_t n : awkward_lengths()) {
    const std::vector<double> x = random_signal(n, 11 + n);
    const std::vector<double> acc0 = random_signal(n, 23 + n);
    expect_tiers_match("accumulate n=" + std::to_string(n), [&] {
      std::vector<double> acc = acc0;
      simd::kernels().accumulate(acc.data(), x.data(), n);
      return acc;
    });
  }
}

TEST(SimdKernels, MovingAverageBitIdenticalAcrossTiers) {
  for (const std::size_t n : awkward_lengths()) {
    const std::vector<double> x = random_signal(n, 31 + n);
    for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{7}, std::size_t{22},
                                std::size_t{31}, std::size_t{200}}) {
      expect_tiers_match(
          "moving_average n=" + std::to_string(n) + " w=" + std::to_string(w),
          [&] {
            std::vector<double> out(n);
            dsp::moving_average_into(x, w, out);
            return out;
          });
    }
  }
}

TEST(SimdKernels, MovingAverageRangeMatchesFullPass) {
  // A partial update over [from, n) must write exactly the bits a full
  // pass writes at those positions — the streaming timing cache depends
  // on this.
  const std::size_t n = 97;
  const std::vector<double> x = random_signal(n, 71);
  for (const std::size_t w :
       {std::size_t{3}, std::size_t{9}, std::size_t{33}}) {
    std::vector<double> full(n);
    dsp::moving_average_into(x, w, full);
    for (const std::size_t from : {std::size_t{0}, std::size_t{1},
                                   std::size_t{40}, std::size_t{96},
                                   std::size_t{97}}) {
      std::vector<double> partial(n, -1000.0);
      dsp::moving_average_range_into(x, w, from, partial);
      for (std::size_t i = from; i < n; ++i)
        expect_bits(full[i], partial[i],
                    "range w=" + std::to_string(w) +
                        " from=" + std::to_string(from) + " i=" +
                        std::to_string(i));
      for (std::size_t i = 0; i < from; ++i)
        EXPECT_EQ(partial[i], -1000.0) << "wrote before from";
    }
  }
}

TEST(SimdKernels, AcfBitIdenticalAcrossTiersAndAgainstLegacy) {
  for (const std::size_t n : awkward_lengths()) {
    const std::vector<double> x = random_signal(n, 43 + n);
    const std::size_t max_lag = n + 2;  // deliberately beyond n
    expect_tiers_match("acf n=" + std::to_string(n), [&] {
      std::vector<double> out(max_lag + 1);
      common::ScratchArena arena;
      dsp::acf_into(x, arena, out);
      return out;
    });
    // The hoisted arena overload must match the per-lag reference exactly.
    std::vector<double> legacy(max_lag + 1);
    dsp::acf_into(x, legacy);
    std::vector<double> hoisted(max_lag + 1);
    common::ScratchArena arena;
    dsp::acf_into(x, arena, hoisted);
    for (std::size_t k = 0; k <= max_lag; ++k)
      expect_bits(legacy[k], hoisted[k],
                  "acf legacy-vs-hoisted n=" + std::to_string(n) + " lag=" +
                      std::to_string(k));
  }
  // Zero-variance convention survives the hoisting.
  const std::vector<double> flat(32, 3.25);
  std::vector<double> out(5);
  common::ScratchArena arena;
  dsp::acf_into(flat, arena, out);
  EXPECT_EQ(out[0], 1.0);
  for (std::size_t k = 1; k < out.size(); ++k) EXPECT_EQ(out[k], 0.0);
}

TEST(SimdKernels, CwtConvolutionBitIdenticalAcrossTiers) {
  for (const std::size_t n : awkward_lengths()) {
    const std::vector<double> x = random_signal(n, 57 + n);
    for (const double a : {0.7, 2.0, 5.0, 10.0, 20.0}) {
      expect_tiers_match(
          "cwt n=" + std::to_string(n) + " a=" + std::to_string(a), [&] {
            std::vector<double> out(n);
            common::ScratchArena arena;
            dsp::cwt_row_into(x, a, arena, out);
            return out;
          });
    }
  }
}

TEST(SimdKernels, EntropiesBitIdenticalAcrossTiers) {
  for (const std::size_t n : awkward_lengths()) {
    if (n < 4) continue;
    const std::vector<double> x = random_signal(n, 77 + n);
    expect_tiers_match("entropies n=" + std::to_string(n), [&] {
      return std::vector<double>{features::sample_entropy(x),
                                 features::approximate_entropy(x)};
    });
  }
}

TEST(SimdKernels, FusedEntropyCountsMatchLegacyKernelsOnEveryTier) {
  TierGuard guard;
  constexpr std::size_t m = 2;
  const double r = 0.35;
  for (const std::size_t n : awkward_lengths()) {
    if (n <= m + 1) continue;  // kernel precondition
    const std::vector<double> x = random_signal(n, 505 + n);
    const std::size_t tm = n - m + 1;
    const std::size_t tm1 = n - m;

    // Independent references: the pair totals from the legacy
    // count_matches kernel, the per-template counts from a plain double
    // loop over ALL ordered (i, j) including the self-match.
    ASSERT_TRUE(simd::set_tier(simd::Tier::kScalar));
    const std::size_t want_pm = simd::kernels().count_matches(x.data(), n, m, r);
    const std::size_t want_pm1 =
        simd::kernels().count_matches(x.data(), n, m + 1, r);
    const auto cheb = [&](std::size_t i, std::size_t j, std::size_t mm) {
      for (std::size_t k = 0; k < mm; ++k)
        if (std::fabs(x[i + k] - x[j + k]) > r) return false;
      return true;
    };
    std::vector<std::uint32_t> want_cm(tm, 0), want_cm1(tm1, 0);
    for (std::size_t i = 0; i < tm; ++i)
      for (std::size_t j = 0; j < tm; ++j)
        if (cheb(i, j, m)) ++want_cm[i];
    for (std::size_t i = 0; i < tm1; ++i)
      for (std::size_t j = 0; j < tm1; ++j)
        if (cheb(i, j, m + 1)) ++want_cm1[i];

    for (const simd::Tier tier : available_tiers()) {
      ASSERT_TRUE(simd::set_tier(tier));
      std::vector<std::uint32_t> cm(tm), cm1(tm1);
      std::size_t pm = 0, pm1 = 0;
      simd::kernels().entropy_counts(x.data(), n, m, r, cm.data(), cm1.data(),
                                     &pm, &pm1);
      const std::string what =
          std::string("entropy_counts tier=") + simd::tier_name(tier) +
          " n=" + std::to_string(n);
      EXPECT_EQ(want_pm, pm) << what;
      EXPECT_EQ(want_pm1, pm1) << what;
      EXPECT_EQ(want_cm, cm) << what;
      EXPECT_EQ(want_cm1, cm1) << what;
    }
  }
}

TEST(SimdKernels, EntropyPairMatchesSeparateMeasuresBitExact) {
  common::ScratchArena arena;
  for (const std::size_t n : awkward_lengths()) {
    if (n < 4) continue;
    const std::vector<double> x = random_signal(n, 909 + n);
    // Across tiers, and against the separate legacy entry points, the
    // fused pair must reproduce the exact same bits.
    expect_tiers_match("entropy_pair n=" + std::to_string(n), [&] {
      const auto [sampen, apen] = features::entropy_pair(x, arena);
      return std::vector<double>{sampen, apen, features::sample_entropy(x),
                                 features::approximate_entropy(x)};
    });
    const auto [sampen, apen] = features::entropy_pair(x, arena);
    expect_bits(sampen, features::sample_entropy(x),
                "entropy_pair sampen n=" + std::to_string(n));
    expect_bits(apen, features::approximate_entropy(x),
                "entropy_pair apen n=" + std::to_string(n));
  }
}

TEST(SimdKernels, PeakCountsBitIdenticalAcrossTiers) {
  for (const std::size_t n : awkward_lengths()) {
    const std::vector<double> x = random_signal(n, 91 + n);
    expect_tiers_match("peaks n=" + std::to_string(n), [&] {
      std::vector<double> counts;
      for (const std::size_t s : {std::size_t{1}, std::size_t{3},
                                  std::size_t{5}}) {
        counts.push_back(static_cast<double>(dsp::count_peaks(x, s)));
        counts.push_back(static_cast<double>(
            dsp::count_peaks_at_least(x, s, 0.5)));
      }
      return counts;
    });
  }
}

TEST(SimdKernels, GoertzelBatchMatchesSingleBitIdentically) {
  TierGuard guard;
  const double rate = 1000.0;
  std::vector<double> frequencies;
  for (int f = 1; f <= 37; ++f) frequencies.push_back(12.5 * f);
  for (const std::size_t n : {std::size_t{16}, std::size_t{301}}) {
    const std::vector<double> x = random_signal(n, 101 + n);
    // Reference: the untouched one-frequency public routine.
    std::vector<double> single(frequencies.size());
    for (std::size_t f = 0; f < frequencies.size(); ++f)
      single[f] = dsp::goertzel_magnitude(x, frequencies[f], rate);
    for (const simd::Tier tier : available_tiers()) {
      ASSERT_TRUE(simd::set_tier(tier));
      std::vector<double> batched(frequencies.size());
      dsp::goertzel_magnitudes(x, frequencies, rate, batched);
      for (std::size_t f = 0; f < frequencies.size(); ++f)
        expect_bits(single[f], batched[f],
                    std::string("goertzel tier=") + simd::tier_name(tier) +
                        " f=" + std::to_string(f));
    }
  }
}

TEST(SimdKernels, FftBitIdenticalAcrossTiers) {
  // 4096 crosses the stack-twiddle cap (stage half > 512), exercising the
  // legacy serial-chain fallback next to kernel-driven stages.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{64}, std::size_t{256}, std::size_t{1024},
        std::size_t{4096}}) {
    const std::vector<double> x = random_signal(n, 113 + n);
    expect_tiers_match("fft n=" + std::to_string(n), [&] {
      std::vector<std::complex<double>> buf(n);
      for (std::size_t i = 0; i < n; ++i) buf[i] = {x[i], 0.0};
      dsp::fft_inplace(buf);
      std::vector<double> flat;
      flat.reserve(2 * n);
      for (const auto& c : buf) {
        flat.push_back(c.real());
        flat.push_back(c.imag());
      }
      return flat;
    });
  }
}

ml::SampleSet make_training_set(std::size_t rows, std::size_t cols,
                                int classes, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  ml::SampleSet set;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(cols);
    for (auto& v : row) v = value(rng);
    double s = 0.0;
    for (std::size_t c = 0; c < cols; c += 2) s += row[c];
    const int label = std::min(
        classes - 1, std::max(0, static_cast<int>(s + classes / 2.0)));
    set.features.push_back(std::move(row));
    set.labels.push_back(label);
  }
  for (int k = 0; k < classes; ++k)
    set.labels[static_cast<std::size_t>(k)] = k;
  return set;
}

TEST(SimdKernels, BatchedForestBitIdenticalAcrossTiersAndToReference) {
  constexpr std::size_t kCols = 12;
  ml::RandomForestConfig config;
  config.num_trees = 70;  // > one traversal chunk, with a lane-group tail
  config.seed = 99;
  ml::RandomForest forest(config);
  forest.fit(make_training_set(160, kCols, 4, 7));
  const ml::CompiledForest compiled(forest);
  ASSERT_TRUE(compiled.compiled());

  TierGuard guard;
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> value(-3.0, 3.0);
  std::vector<double> x(kCols);
  std::vector<double> proba(compiled.num_classes());
  for (int trial = 0; trial < 100; ++trial) {
    for (auto& v : x) v = value(rng);
    const std::vector<double> ref = forest.predict_proba(x);
    for (const simd::Tier tier : available_tiers()) {
      ASSERT_TRUE(simd::set_tier(tier));
      compiled.predict_proba_into(x, proba);
      for (std::size_t c = 0; c < ref.size(); ++c)
        expect_bits(ref[c], proba[c],
                    std::string("forest tier=") + simd::tier_name(tier));
    }
  }
}

TEST(SimdKernels, FeatureBankExtractionBitIdenticalAcrossTiers) {
  const features::FeatureBank bank;
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> value(0.0, 5.0);
  for (const std::size_t n : {std::size_t{24}, std::size_t{67},
                              std::size_t{160}}) {
    std::vector<std::vector<double>> channels(3, std::vector<double>(n));
    for (auto& ch : channels)
      for (auto& v : ch) v = value(rng);
    std::vector<std::span<const double>> windows(channels.begin(),
                                                 channels.end());
    const std::span<const std::span<const double>> span_windows(windows);
    expect_tiers_match("feature bank n=" + std::to_string(n),
                       [&] { return bank.extract(span_windows); });
  }
}

TEST(SimdFastMath, ReductionsHonourEpsilonContract) {
  TierGuard guard;
  for (const std::size_t n : awkward_lengths()) {
    const std::vector<double> a = random_signal(n, 131 + n);
    const std::vector<double> b = random_signal(n, 137 + n);
    ASSERT_TRUE(simd::set_tier(simd::Tier::kScalar));
    const double sum_ref = simd::kernels().sum_fast(a.data(), n);
    const double dot_ref = simd::kernels().dot_fast(a.data(), b.data(), n);
    for (const simd::Tier tier : available_tiers()) {
      ASSERT_TRUE(simd::set_tier(tier));
      const double sum_got = simd::kernels().sum_fast(a.data(), n);
      const double dot_got = simd::kernels().dot_fast(a.data(), b.data(), n);
      // Reassociated sums: epsilon contract, scaled to the term count.
      const double tol = 1e-12 * static_cast<double>(n + 1);
      EXPECT_NEAR(sum_got, sum_ref, tol * (1.0 + std::fabs(sum_ref)))
          << "sum_fast tier=" << simd::tier_name(tier) << " n=" << n;
      EXPECT_NEAR(dot_got, dot_ref, tol * (1.0 + std::fabs(dot_ref)))
          << "dot_fast tier=" << simd::tier_name(tier) << " n=" << n;
    }
  }
}

}  // namespace
