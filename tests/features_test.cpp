// Unit tests for the feature measures and the feature bank.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/filters.hpp"
#include "features/bank.hpp"
#include "features/measures.hpp"

namespace airfinger::features {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> sine(std::size_t n, double cycles) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * kPi * cycles * static_cast<double>(i) /
                    static_cast<double>(n));
  return x;
}

std::vector<double> noise(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

// ------------------------------------------------------------- measures

TEST(Measures, SampleEntropyOrdersRegularVsRandom) {
  const auto regular = sine(200, 4.0);
  const auto random = noise(200, 1);
  EXPECT_LT(sample_entropy(regular), sample_entropy(random));
}

TEST(Measures, SampleEntropyConstantIsZero) {
  const std::vector<double> x(50, 2.0);
  EXPECT_DOUBLE_EQ(sample_entropy(x), 0.0);
}

TEST(Measures, ApproximateEntropyOrdersRegularVsRandom) {
  const auto regular = sine(150, 3.0);
  const auto random = noise(150, 2);
  EXPECT_LT(approximate_entropy(regular), approximate_entropy(random));
}

TEST(Measures, CidHigherForComplexSignal) {
  const auto smooth = sine(128, 1.0);
  const auto rough = noise(128, 3);
  EXPECT_LT(cid_ce(smooth), cid_ce(rough));
}

TEST(Measures, CidZeroForShortInput) {
  const std::vector<double> x{1.0};
  EXPECT_DOUBLE_EQ(cid_ce(x), 0.0);
}

TEST(Measures, C3OfSymmetricNoiseNearZero) {
  const auto x = noise(5000, 4);
  EXPECT_NEAR(c3(x, 1), 0.0, 0.1);
}

TEST(Measures, TimeReversalAsymmetryDetectsAsymmetry) {
  // A sawtooth (slow rise, fast fall) is time-asymmetric.
  std::vector<double> saw(300);
  for (int i = 0; i < 300; ++i) saw[i] = (i % 30) / 30.0;
  const auto sym = sine(300, 10.0);
  EXPECT_GT(std::fabs(time_reversal_asymmetry(saw, 1)),
            std::fabs(time_reversal_asymmetry(sym, 1)) + 1e-4);
}

TEST(Measures, EnergyRatioChunksSumToOne) {
  const auto x = noise(97, 5);  // non-divisible length
  double total = 0.0;
  for (std::size_t c = 0; c < 5; ++c)
    total += energy_ratio_by_chunks(x, 5, c);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Measures, EnergyRatioFocusedChunk) {
  std::vector<double> x(100, 0.0);
  for (int i = 40; i < 60; ++i) x[i] = 1.0;  // all energy in chunk 2
  EXPECT_NEAR(energy_ratio_by_chunks(x, 5, 2), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(energy_ratio_by_chunks(x, 5, 0), 0.0);
}

TEST(Measures, AdfStationaryIsStronglyNegative) {
  // White noise is stationary: the ADF statistic should be very negative.
  const auto stationary = noise(300, 6);
  // A random walk has a unit root: statistic near zero.
  common::Rng rng(7);
  std::vector<double> walk(300);
  walk[0] = 0.0;
  for (std::size_t i = 1; i < walk.size(); ++i)
    walk[i] = walk[i - 1] + rng.normal();
  EXPECT_LT(adf_statistic(stationary), -5.0);
  EXPECT_GT(adf_statistic(walk), -3.0);
}

TEST(Measures, DegenerateInputsAreFinite) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_TRUE(std::isfinite(sample_entropy(tiny)));
  EXPECT_TRUE(std::isfinite(approximate_entropy(tiny)));
  EXPECT_TRUE(std::isfinite(adf_statistic(tiny)));
  EXPECT_DOUBLE_EQ(c3(tiny, 1), 0.0);
  EXPECT_DOUBLE_EQ(time_reversal_asymmetry(tiny, 1), 0.0);
}

// ------------------------------------------------------------- bank

TEST(Bank, NamesMatchFeatureCount) {
  const FeatureBank bank;
  EXPECT_EQ(bank.names().size(), bank.feature_count());
  EXPECT_GT(bank.feature_count(), 60u);
}

TEST(Bank, InterferenceSubsetHasNineEntries) {
  const FeatureBank bank;
  EXPECT_EQ(bank.interference_indices().size(), 9u);
  for (std::size_t idx : bank.interference_indices())
    EXPECT_LT(idx, bank.feature_count());
}

TEST(Bank, ExtractIsDeterministicAndFinite) {
  const FeatureBank bank;
  const auto x = noise(150, 8);
  std::vector<double> seg(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) seg[i] = x[i] * x[i];
  const auto a = bank.extract(seg);
  const auto b = bank.extract(seg);
  ASSERT_EQ(a.size(), bank.feature_count());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
    EXPECT_TRUE(std::isfinite(a[i])) << bank.names()[i];
  }
}

TEST(Bank, ConstantSegmentIsHandled) {
  const FeatureBank bank;
  const std::vector<double> seg(64, 5.0);
  const auto f = bank.extract(seg);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_TRUE(std::isfinite(f[i])) << bank.names()[i];
}

TEST(Bank, ShortSegmentThrows) {
  const FeatureBank bank;
  const std::vector<double> seg{1.0, 2.0, 3.0};
  EXPECT_THROW(bank.extract(std::span<const double>(seg)),
               PreconditionError);
}

TEST(Bank, ShapeFeaturesAreAmplitudeInvariant) {
  const FeatureBank bank;
  auto base = sine(120, 3.0);
  for (auto& v : base) v = (v + 1.5) * (v + 1.5);  // positive "energy"
  std::vector<double> scaled(base);
  // Log compression turns a pure scale into a shift that z-normalization
  // removes, so shape features should barely move for large scale factors.
  for (auto& v : scaled) v *= 1000.0;
  const auto fa = bank.extract(std::span<const double>(base));
  const auto fb = bank.extract(std::span<const double>(scaled));
  const auto& names = bank.names();
  // log1p turns a pure scale into an (approximate) shift that the
  // z-normalization removes; small-value regions deviate, so the
  // invariance is approximate: require the bulk of the shape features to
  // move very little, rather than a hard bound on every statistic.
  std::size_t compared = 0, stable = 0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (names[i].rfind("log_", 0) == 0 || names[i] == "coeff_variation")
      continue;  // scale features are supposed to move
    ++compared;
    if (std::fabs(fa[i] - fb[i]) <= 0.3) ++stable;
  }
  EXPECT_GT(static_cast<double>(stable) / static_cast<double>(compared),
            0.85);
}

TEST(Bank, DurationReachesLengthFeature) {
  const FeatureBank bank;
  auto short_seg = sine(60, 2.0);
  auto long_seg = sine(180, 6.0);
  for (auto& v : short_seg) v = v * v;
  for (auto& v : long_seg) v = v * v;
  const auto fs = bank.extract(std::span<const double>(short_seg));
  const auto fl = bank.extract(std::span<const double>(long_seg));
  const auto& names = bank.names();
  const auto it =
      std::find(names.begin(), names.end(), std::string("log_length"));
  ASSERT_NE(it, names.end());
  const auto idx = static_cast<std::size_t>(it - names.begin());
  EXPECT_GT(fl[idx], fs[idx]);
}

TEST(Bank, CrossChannelZerosForSingleChannel) {
  const FeatureBank bank;
  const auto x = sine(100, 2.0);
  std::vector<double> seg(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) seg[i] = x[i] * x[i] + 1.0;
  const auto f = bank.extract(std::span<const double>(seg));
  const auto& names = bank.names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i].rfind("xc_", 0) == 0)
      EXPECT_DOUBLE_EQ(f[i], 0.0) << names[i];
}

TEST(Bank, CrossChannelAsymmetryDetectsOrderedEnergy) {
  const FeatureBank bank;
  // Channel 1 bursts early, channel 3 late: a scroll-like pattern.
  std::vector<double> c1(120, 0.1), c2(120, 0.1), c3v(120, 0.1);
  for (int i = 20; i < 45; ++i) c1[i] = 50.0;
  for (int i = 50; i < 70; ++i) c2[i] = 50.0;
  for (int i = 75; i < 100; ++i) c3v[i] = 50.0;
  const std::span<const double> chans[] = {c1, c2, c3v};
  const auto f = bank.extract(std::span<const std::span<const double>>(chans));
  const auto& names = bank.names();
  const auto find = [&](const char* n) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), std::string(n)) -
        names.begin());
  };
  EXPECT_GT(f[find("xc_asym_delta")], 0.5);
  EXPECT_GT(f[find("xc_tau_spread")], 0.2);
}

TEST(Bank, EnvelopeBurstCountSeparatesSingleFromDouble) {
  const FeatureBank bank;
  // One hump vs two well-separated humps.
  std::vector<double> one(150, 0.0), two(150, 0.0);
  for (int i = 50; i < 100; ++i)
    one[i] = std::sin(kPi * (i - 50) / 50.0) * 100.0;
  for (int i = 20; i < 60; ++i)
    two[i] = std::sin(kPi * (i - 20) / 40.0) * 100.0;
  for (int i = 90; i < 130; ++i)
    two[i] = std::sin(kPi * (i - 90) / 40.0) * 100.0;
  const auto f1 = bank.extract(std::span<const double>(one));
  const auto f2 = bank.extract(std::span<const double>(two));
  const auto& names = bank.names();
  const auto idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), std::string("env_burst_count")) -
      names.begin());
  EXPECT_LT(f1[idx], f2[idx]);
}

TEST(Bank, CrossChannelCapBoundsLongSegmentsOnly) {
  FeatureBankOptions uncapped_opt;
  uncapped_opt.cross_channel_cap = 0;
  const FeatureBank capped;  // default cap
  const FeatureBank uncapped(uncapped_opt);
  const std::size_t cap = capped.options().cross_channel_cap;
  ASSERT_GT(cap, 0u);

  auto make_channels = [](std::size_t n, std::uint64_t seed) {
    common::Rng rng(seed);
    std::vector<std::vector<double>> ch(3, std::vector<double>(n));
    for (auto& c : ch)
      for (auto& v : c) v = std::fabs(rng.normal()) + 0.1;
    return ch;
  };
  auto as_spans = [](const std::vector<std::vector<double>>& ch) {
    return std::vector<std::span<const double>>(ch.begin(), ch.end());
  };
  auto bits_equal = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(a)) == 0;
  };

  // At or under the cap the capped bank is bit-identical to the uncapped
  // one — every training/evaluation gesture takes this path.
  {
    const auto ch = make_channels(cap, 7);
    const auto spans = as_spans(ch);
    const auto a = capped.extract(spans);
    const auto b = uncapped.extract(spans);
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_TRUE(bits_equal(a[i], b[i])) << capped.names()[i];
  }

  // Above the cap only the xc_* features may move, and they must equal
  // the uncapped bank's xc_* features over the decimated channels (the
  // cap is exactly "resample, then the historical block").
  {
    const std::size_t n = 2 * cap + 117;
    const auto ch = make_channels(n, 8);
    std::vector<std::vector<double>> dec(3, std::vector<double>(cap));
    for (std::size_t c = 0; c < 3; ++c)
      dsp::resample_linear_into(ch[c], dec[c]);
    const auto spans = as_spans(ch);
    const auto dec_spans = as_spans(dec);
    const auto got = capped.extract(spans);
    const auto raw = uncapped.extract(spans);
    const auto via_dec = uncapped.extract(dec_spans);
    const auto& names = capped.names();
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (names[i].rfind("xc_", 0) == 0) {
        EXPECT_TRUE(bits_equal(got[i], via_dec[i])) << names[i];
      } else {
        EXPECT_TRUE(bits_equal(got[i], raw[i])) << names[i];
      }
    }
  }
}

TEST(Bank, CustomOptionsChangeArity) {
  FeatureBankOptions opt;
  opt.fft_coefficients = 4;
  opt.cross_channel = false;
  const FeatureBank small(opt);
  const FeatureBank standard;
  EXPECT_LT(small.feature_count(), standard.feature_count());
}

}  // namespace
}  // namespace airfinger::features
