// Tests for dataset CSV export/import and the CSV reader helper.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "synth/io.hpp"

namespace airfinger {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "io_test_corpus.csv";
};

TEST(CsvSplit, HonoursQuoting) {
  const auto plain = common::csv_split("a,b,c");
  ASSERT_EQ(plain.size(), 3u);
  EXPECT_EQ(plain[1], "b");

  const auto quoted = common::csv_split("a,\"b,c\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(quoted.size(), 3u);
  EXPECT_EQ(quoted[1], "b,c");
  EXPECT_EQ(quoted[2], "say \"hi\"");

  const auto trailing = common::csv_split("x,,");
  ASSERT_EQ(trailing.size(), 3u);
  EXPECT_EQ(trailing[1], "");
}

TEST(CsvSplit, RoundTripsThroughCsvLine) {
  const std::vector<std::string> fields{"plain", "with,comma", "with\"q"};
  EXPECT_EQ(common::csv_split(common::csv_line(fields)), fields);
}

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 2;
  config.kinds = {synth::MotionKind::kClick, synth::MotionKind::kScrollUp};
  config.seed = 99;
  const auto original = synth::DatasetBuilder(config).collect();
  synth::save_dataset_csv(original, path_);
  const auto loaded = synth::load_dataset_csv(path_);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.samples[i];
    const auto& b = loaded.samples[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.repetition, b.repetition);
    EXPECT_DOUBLE_EQ(a.gesture_start_s, b.gesture_start_s);
    EXPECT_DOUBLE_EQ(a.standoff_m, b.standoff_m);
    EXPECT_EQ(a.scroll.has_value(), b.scroll.has_value());
    if (a.scroll) {
      EXPECT_DOUBLE_EQ(a.scroll->direction, b.scroll->direction);
      EXPECT_DOUBLE_EQ(a.scroll->displacement_m, b.scroll->displacement_m);
    }
    ASSERT_EQ(a.trace.sample_count(), b.trace.sample_count());
    for (std::size_t c = 0; c < a.trace.channel_count(); ++c)
      for (std::size_t f = 0; f < a.trace.sample_count(); ++f)
        EXPECT_DOUBLE_EQ(a.trace.channel(c)[f], b.trace.channel(c)[f]);
  }
}

TEST_F(DatasetIoTest, MalformedFilesRejected) {
  {
    std::ofstream out(path_);
    out << "wrong,header\n1,2\n";
  }
  EXPECT_THROW(synth::load_dataset_csv(path_), PreconditionError);

  EXPECT_THROW(synth::load_dataset_csv("does_not_exist_12345.csv"),
               std::runtime_error);

  synth::Dataset empty;
  EXPECT_THROW(synth::save_dataset_csv(empty, path_), PreconditionError);
}

}  // namespace
}  // namespace airfinger
