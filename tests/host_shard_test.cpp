// Concurrency battery for the sharded MultiSessionHost (DESIGN.md §14).
//
// Locks in the serving-host contract the 10k-stream bench relies on:
//
//   * emissions are bit-identical across shard counts {1, 2, 8}, thread
//     counts {1, 4} (auto-sharded), and ring capacities — the shardless
//     inline host is the reference every threaded configuration must
//     reproduce exactly;
//   * a mid-trace fault quarantines exactly its own lane at any shard
//     count, and sibling lanes on the same shard stay bit-identical to
//     standalone sessions;
//   * sessions can be added and removed between epochs: indices stay
//     stable, retired lanes reject feeds and keep contributing their
//     final health/metrics to the aggregates;
//   * admission control is exact: under kReject in inline mode the
//     rejected-frame counters match the injected overflow frame for
//     frame, and under kBlock nothing is ever lost no matter how small
//     the rings are.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/multi_session_host.hpp"
#include "core/trainer.hpp"
#include "sensor/fault_injector.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

/// One small trained bundle shared by every test in this file (training
/// dominates the suite's cost; the bundle is immutable so sharing is safe).
const std::shared_ptr<const core::ModelBundle>& trained_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

/// Distinct multi-gesture streams, one per hosted session.
std::vector<sensor::MultiChannelTrace> gesture_streams(std::size_t count) {
  const std::vector<synth::MotionKind> mix{
      synth::MotionKind::kCircle, synth::MotionKind::kScrollUp,
      synth::MotionKind::kClick, synth::MotionKind::kScrollDown};
  std::vector<sensor::MultiChannelTrace> traces;
  traces.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    synth::CollectionConfig config;
    config.users = 1;
    config.seed = 2200 + s;
    traces.push_back(
        synth::make_gesture_stream(config, mix, config.seed).trace);
  }
  return traces;
}

void expect_events_identical(const std::vector<core::GestureEvent>& a,
                             const std::vector<core::GestureEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    EXPECT_EQ(a[e].time_s, b[e].time_s);
    EXPECT_EQ(a[e].gesture, b[e].gesture);
    EXPECT_EQ(a[e].segment_begin, b[e].segment_begin);
    EXPECT_EQ(a[e].segment_end, b[e].segment_end);
    EXPECT_EQ(a[e].scroll.has_value(), b[e].scroll.has_value());
    if (a[e].scroll && b[e].scroll) {
      EXPECT_EQ(a[e].scroll->direction, b[e].scroll->direction);
      EXPECT_EQ(a[e].scroll->velocity_mps, b[e].scroll->velocity_mps);
      EXPECT_EQ(a[e].scroll->duration_s, b[e].scroll->duration_s);
    }
  }
}

void expect_hosted_identical(const std::vector<core::SessionEvent>& a,
                             const std::vector<core::SessionEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::vector<core::GestureEvent> ea, eb;
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].session, b[e].session) << "event " << e;
    ea.push_back(a[e].event);
    eb.push_back(b[e].event);
  }
  expect_events_identical(ea, eb);
}

// ------------------------------------------- shard-count invariance

TEST(HostSharding, EmissionsBitIdenticalAcrossShardCounts) {
  const auto traces = gesture_streams(6);
  const auto run_with = [&](core::HostConfig config) {
    core::MultiSessionHost host(trained_bundle(), traces.size(),
                                trained_bundle()->config().fault_policy,
                                config);
    return host.run_round_robin(traces, 53);
  };

  core::HostConfig reference_config;
  reference_config.shards = 1;  // inline mode: the reference
  const auto reference = run_with(reference_config);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    core::HostConfig config;
    config.shards = shards;
    expect_hosted_identical(reference, run_with(config));
  }

  // Ring capacity is a pure throughput knob: a 2-frame ring forces
  // constant backpressure yet must not perturb a single bit.
  for (const std::size_t ring : {std::size_t{2}, std::size_t{64}}) {
    SCOPED_TRACE("ring " + std::to_string(ring));
    core::HostConfig config;
    config.shards = 2;
    config.ring_frames = ring;
    expect_hosted_identical(reference, run_with(config));
  }
}

TEST(HostSharding, AutoShardCountFollowsThreadPoolAndEmissionsMatch) {
  const auto traces = gesture_streams(4);
  std::vector<core::SessionEvent> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    common::ScopedThreads scoped(threads);
    core::MultiSessionHost host(trained_bundle(), traces.size());
    EXPECT_EQ(host.shard_count(), threads);  // auto = current pool size
    const auto hosted = host.run_round_robin(traces, 37);
    if (reference.empty())
      reference = hosted;
    else
      expect_hosted_identical(reference, hosted);
  }
  // Explicit shards trump the pool; the count is capped by sessions.
  common::ScopedThreads scoped(1);
  core::HostConfig config;
  config.shards = 99;
  core::MultiSessionHost host(trained_bundle(), traces.size(),
                              trained_bundle()->config().fault_policy,
                              config);
  EXPECT_EQ(host.shard_count(), traces.size());
  expect_hosted_identical(reference, host.run_round_robin(traces, 37));
}

// ------------------------------------------------ fault quarantine

TEST(HostSharding, MidTraceFaultQuarantinesOnlyItsLaneAtAnyShardCount) {
  auto traces = gesture_streams(5);
  sensor::FaultInjectorConfig fault_config;
  fault_config.non_finite_rate = 0.01;
  sensor::FaultInjector injector(fault_config, 31337);
  traces[2] = injector.corrupt(traces[2]);
  ASSERT_FALSE(injector.log().empty());

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    core::HostConfig config;
    config.shards = shards;
    // Strict sessions: the corrupt lane throws inside its shard worker
    // and must be quarantined without disturbing shard siblings.
    core::MultiSessionHost host(trained_bundle(), traces.size(),
                                trained_bundle()->config().fault_policy,
                                config);
    const auto hosted = host.run_round_robin(traces, 37);

    EXPECT_TRUE(host.session_faulted(2));
    EXPECT_EQ(host.faulted_count(), 1u);
    EXPECT_NE(host.session_fault(2).find("non-finite"), std::string::npos);
    EXPECT_GT(host.dropped_frames(2), 0u);

    std::vector<std::vector<core::GestureEvent>> per_session(traces.size());
    for (const auto& e : hosted) per_session[e.session].push_back(e.event);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (i == 2) continue;
      SCOPED_TRACE("sibling " + std::to_string(i));
      EXPECT_FALSE(host.session_faulted(i));
      core::Session standalone(trained_bundle());
      expect_events_identical(per_session[i],
                              standalone.process_trace(traces[i]));
    }
  }
}

// -------------------------------------------- lifecycle between epochs

TEST(HostSharding, AddAndRemoveSessionsBetweenEpochs) {
  const auto traces = gesture_streams(3);
  const std::size_t channels = trained_bundle()->config().channels;
  core::MultiSessionHost host(trained_bundle(), 2);

  const auto feed_range = [&](std::size_t lane,
                              const sensor::MultiChannelTrace& trace,
                              std::size_t begin, std::size_t end) {
    std::vector<double> frame(channels);
    for (std::size_t f = begin; f < end; ++f) {
      for (std::size_t c = 0; c < channels; ++c)
        frame[c] = trace.channel(c)[f];
      EXPECT_TRUE(host.feed(lane, frame));
    }
  };

  const std::size_t half0 = traces[0].sample_count() / 2;
  const std::size_t half1 = traces[1].sample_count() / 2;
  feed_range(0, traces[0], 0, half0);
  feed_range(1, traces[1], 0, half1);
  host.pump();  // epoch barrier: everything fed so far is processed
  EXPECT_EQ(host.frames_processed(), half0 + half1);

  // Grow between epochs: the new lane lands on shard index % shards.
  const std::size_t added = host.add_session();
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(host.session_count(), 3u);

  feed_range(0, traces[0], half0, traces[0].sample_count());
  feed_range(1, traces[1], half1, traces[1].sample_count());
  feed_range(2, traces[2], 0, traces[2].sample_count());
  host.finish();

  // Retire lane 0: the index stays valid, its final counters survive.
  const std::uint64_t frames_before = host.aggregate_health().frames;
  host.remove_session(0);
  EXPECT_TRUE(host.session_retired(0));
  EXPECT_FALSE(host.session_retired(1));
  host.remove_session(0);  // idempotent

  std::vector<double> frame(channels, 0.0);
  EXPECT_FALSE(host.feed(0, frame));  // retired lanes reject feeds
  EXPECT_EQ(host.rejected_frames(0), 1u);
  EXPECT_TRUE(host.feed(1, frame));  // live lanes are untouched

  // Aggregates still cover the retired lane via its captured snapshot.
  EXPECT_EQ(host.aggregate_health().frames, frames_before + 1);
  const obs::MetricsSnapshot metrics = host.aggregate_metrics();
  EXPECT_EQ(metrics.find("af_host_sessions")->value, 3.0);
  EXPECT_EQ(metrics.find("af_host_retired_sessions")->value, 1.0);
  EXPECT_EQ(metrics.find("af_host_rejected_frames_total")->count, 1u);
  EXPECT_EQ(metrics.find("af_host_frames_processed_total")->count,
            traces[0].sample_count() + traces[1].sample_count() +
                traces[2].sample_count() + 1);

  // The still-live lanes drain their full event streams.
  host.pump();
  const auto events = host.drain();
  std::vector<std::vector<core::GestureEvent>> per_session(3);
  for (const auto& e : events) per_session[e.session].push_back(e.event);
  core::Session standalone(trained_bundle());
  expect_events_identical(per_session[2],
                          standalone.process_trace(traces[2]));
}

// ------------------------------------------------- admission control

TEST(HostSharding, RejectAdmissionCountsOverflowExactly) {
  // Inline mode makes rejection deterministic: the caller is the only
  // consumer, so with an 8-frame ring exactly the 9th..Nth un-pumped
  // feeds overflow — the counters must match the injected overflow
  // frame for frame.
  const std::size_t channels = trained_bundle()->config().channels;
  core::HostConfig config;
  config.shards = 1;
  config.ring_frames = 8;
  config.admission = core::Admission::kReject;
  core::MultiSessionHost host(trained_bundle(), 1,
                              trained_bundle()->config().fault_policy,
                              config);

  const std::vector<double> frame(channels, 0.05);
  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < 20; ++i)
    (host.feed(0, frame) ? accepted : rejected) += 1;
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 12u);
  EXPECT_EQ(host.rejected_frames(0), 12u);
  EXPECT_EQ(host.ring_high_water(0), 8u);

  host.pump();  // drains the 8 accepted frames; ring empties
  EXPECT_EQ(host.frames_processed(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(host.feed(0, frame));
  EXPECT_FALSE(host.feed(0, frame));
  EXPECT_EQ(host.rejected_frames(0), 13u);
  EXPECT_EQ(host.dropped_frames(0), 0u);  // rejected != dropped

  // The overflow surfaces in the aggregate view.
  const obs::MetricsSnapshot metrics = host.aggregate_metrics(true);
  EXPECT_EQ(metrics.find("af_host_rejected_frames_total")->count, 13u);
  EXPECT_EQ(metrics.find("af_host_ring_capacity_frames")->value, 8.0);
  EXPECT_EQ(metrics.find("af_host_ring_high_water_frames")->value, 8.0);
  EXPECT_EQ(metrics.find("af_host_shards")->value, 1.0);
}

TEST(HostSharding, BlockAdmissionIsLosslessUnderTinyRings) {
  // kBlock with a 2-frame ring: feed() constantly waits on the worker,
  // yet every frame must arrive — fed == processed, nothing dropped or
  // rejected, and the emissions match an unconstrained run exactly.
  const auto traces = gesture_streams(2);
  core::HostConfig config;
  config.shards = 2;
  config.ring_frames = 2;
  core::MultiSessionHost host(trained_bundle(), traces.size(),
                              trained_bundle()->config().fault_policy,
                              config);
  const auto hosted = host.run_round_robin(traces, 37);

  const std::uint64_t fed =
      traces[0].sample_count() + traces[1].sample_count();
  EXPECT_EQ(host.frames_processed(), fed);
  EXPECT_EQ(host.dropped_frames(0) + host.dropped_frames(1), 0u);
  EXPECT_EQ(host.rejected_frames(0) + host.rejected_frames(1), 0u);

  std::vector<std::vector<core::GestureEvent>> per_session(traces.size());
  for (const auto& e : hosted) per_session[e.session].push_back(e.event);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    core::Session standalone(trained_bundle());
    expect_events_identical(per_session[i],
                            standalone.process_trace(traces[i]));
  }
}

}  // namespace
}  // namespace airfinger
