// Detection-quality battery for the streaming artifact layer (DESIGN.md §17).
//
// Three tiers, mirroring how the detectors are deployed:
//
//   * unit tests of each streaming detector against synthetic signals with
//     known statistics — adaptive click-threshold convergence on stationary
//     noise, Levinson–Durbin against a direct dense Toeplitz solve,
//     excess kurtosis separating impulsive from Gaussian windows, spectral
//     flatness separating tones from broadband noise, baseline-velocity
//     drift tracking, and reset() equivalence to a fresh detector;
//   * seeded injector-vs-detector sweeps: every new FaultInjector class
//     (crackle, step, drift, flicker) plus glitch impulses is replayed
//     against a policy whose thresholds are derived from the clean corpus
//     (the same recipe bench/robustness.cpp documents), asserting per-class
//     detection at multiple rates/seeds and a zero-action false-positive
//     gate on clean traffic;
//   * repair-exactness: an impulse on a locally linear stretch is repaired
//     to the bit-identical clean value, so a gesture recorded *after* the
//     corruption decodes into byte-identical events — and a hold that
//     overflows without escalation is a pure delay.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "sensor/artifact.hpp"
#include "sensor/fault_injector.hpp"
#include "synth/dataset.hpp"

namespace airfinger {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------- substrate

/// One small trained bundle shared by every session-level test here.
const std::shared_ptr<const core::ModelBundle>& trained_bundle() {
  static const std::shared_ptr<const core::ModelBundle> bundle = [] {
    core::TrainerConfig config;
    config.users = 2;
    config.sessions = 1;
    config.repetitions = 3;
    config.non_gesture_repetitions = 3;
    config.seed = 11;
    return core::build_bundle(config);
  }();
  return bundle;
}

/// Clean single-gesture recordings used as the substrate for corruption.
const synth::Dataset& probe_corpus() {
  static const synth::Dataset probes = [] {
    synth::CollectionConfig config;
    config.users = 1;
    config.sessions = 1;
    // 8 repetitions of 4 kinds: the appended substrate is ~5k samples —
    // long enough for drift ramps (400 samples) and flicker episodes
    // (600) to play out and for the sustain windows to fill.
    config.repetitions = 8;
    config.kinds = {synth::MotionKind::kCircle, synth::MotionKind::kClick,
                    synth::MotionKind::kScrollUp,
                    synth::MotionKind::kScrollDown};
    config.seed = 404;
    return synth::DatasetBuilder(config).collect();
  }();
  return probes;
}

/// All probes appended into one long recording (more room for storms).
const sensor::MultiChannelTrace& long_probe() {
  static const sensor::MultiChannelTrace trace = [] {
    sensor::MultiChannelTrace out = probe_corpus().samples.front().trace;
    for (std::size_t i = 1; i < probe_corpus().samples.size(); ++i)
      out.append(probe_corpus().samples[i].trace);
    return out;
  }();
  return trace;
}

double clean_ceiling() {
  static const double ceiling = [] {
    double max_abs = 0.0;
    const auto& trace = long_probe();
    for (std::size_t c = 0; c < trace.channel_count(); ++c)
      for (const double x : trace.channel(c))
        max_abs = std::max(max_abs, std::abs(x));
    return max_abs;
  }();
  return ceiling;
}

/// Clean-corpus measurements the graded thresholds are derived from —
/// the deployment recipe from health.hpp: measure the clean ceiling of
/// each detector quantity, then set the acting threshold above it.
struct CleanProfile {
  double max_dx = 0.0;        ///< max |x_t - x_{t-1}| over all channels.
  double max_velocity = 0.0;  ///< max |EWMA baseline velocity| (warmed up).
};

const CleanProfile& clean_profile() {
  static const CleanProfile profile = [] {
    CleanProfile out;
    const auto& trace = long_probe();
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      sensor::ChannelArtifactDetector det;
      const auto ch = trace.channel(c);
      for (std::size_t i = 0; i < ch.size(); ++i) {
        if (i > 0)
          out.max_dx = std::max(out.max_dx, std::abs(ch[i] - ch[i - 1]));
        det.accept(ch[i]);
        if (det.warmed_up())
          out.max_velocity =
              std::max(out.max_velocity, std::abs(det.baseline_velocity()));
      }
    }
    return out;
  }();
  return profile;
}

/// Absolute repair floor: genuine movement must stay under it across a
/// full repair gap (repair_limit + resume frame), or a mid-gesture repair
/// could fail to resume and spuriously escalate. Derived, not guessed.
double repair_floor() {
  return 6.0 * clean_profile().max_dx + 32.0;
}

/// Impulse magnitude all sweeps inject: decisively above the repair floor,
/// decisively below the saturation rail the graded policy keeps.
double storm_magnitude() { return 4.0 * repair_floor(); }

/// The graded policy under test: burst heuristics pushed out of the way
/// (the artifact layer is what these tests exercise), repair and
/// escalation armed with thresholds derived from the clean profile.
core::FaultPolicy graded_policy() {
  core::FaultPolicy policy;
  policy.enabled = true;
  policy.saturation_level = clean_ceiling() + 8.0 * repair_floor();
  policy.saturation_run_limit = 8;
  policy.stuck_run_limit = 32;
  policy.recovery_frames = 32;
  policy.artifact.repair = true;
  policy.artifact.repair_z = 6.0;
  policy.artifact.repair_min_step = repair_floor();
  policy.artifact.escalate = true;
  policy.artifact.detector.drift_velocity =
      std::max(2.0 * clean_profile().max_velocity, 0.05);
  return policy;
}

void expect_events_identical(const std::vector<core::GestureEvent>& a,
                             const std::vector<core::GestureEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    EXPECT_EQ(a[e].time_s, b[e].time_s);
    EXPECT_EQ(a[e].gesture, b[e].gesture);
    EXPECT_EQ(a[e].segment_begin, b[e].segment_begin);
    EXPECT_EQ(a[e].segment_end, b[e].segment_end);
    EXPECT_EQ(a[e].scroll.has_value(), b[e].scroll.has_value());
    if (a[e].scroll && b[e].scroll) {
      EXPECT_EQ(a[e].scroll->direction, b[e].scroll->direction);
      EXPECT_EQ(a[e].scroll->velocity_mps, b[e].scroll->velocity_mps);
      EXPECT_EQ(a[e].scroll->duration_s, b[e].scroll->duration_s);
    }
  }
}

std::uint64_t counter(const core::Session& session,
                      obs::Registry::Handle handle) {
  return session.observability().registry().counter_value(handle);
}

// --------------------------------------------------- detector unit tests

TEST(ArtifactDetector, AdaptiveClickThresholdConvergesOnStationaryNoise) {
  // |x_t - x_{t-1}| of iid N(0, sigma) noise is folded normal with mean
  // sigma * sqrt(2) * sqrt(2/pi); the EWMA statistics must converge there.
  const double sigma = 4.0;
  sensor::ChannelArtifactDetector det;
  common::Rng rng(1234);
  for (int i = 0; i < 4000; ++i) det.accept(rng.normal(0.0, sigma));

  const double expected_mean = sigma * std::sqrt(2.0) * std::sqrt(2.0 / kPi);
  EXPECT_NEAR(det.deriv_mean(), expected_mean, 0.25 * expected_mean);
  EXPECT_GT(det.deriv_sigma(), 0.0);
  // The threshold sits mean + 5 sigma_d above: comfortably above the mean
  // derivative, comfortably below a genuine impulse.
  EXPECT_GT(det.click_threshold(), expected_mean);
  EXPECT_LT(det.click_threshold(), 30.0 * sigma);
}

TEST(ArtifactDetector, ClickScoreSeparatesImpulseFromNoise) {
  const double sigma = 4.0;
  sensor::ChannelArtifactDetector det;
  common::Rng rng(77);
  int clean_saturations = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(0.0, sigma);
    if (det.warmed_up() && det.click_z(x) >= det.config().click_sigma)
      ++clean_saturations;
    det.accept(x);
  }
  // Clean noise essentially never reaches the 5-sigma adaptive threshold.
  EXPECT_LE(clean_saturations, 2);

  // A 30-sigma impulse always does, both through the peek and the commit.
  const double impulse = det.last() + 30.0 * sigma;
  EXPECT_GE(det.click_z(impulse), det.config().click_sigma);
  const sensor::ArtifactScores s = det.accept(impulse);
  EXPECT_EQ(s.click, 1.0);
}

/// Direct dense solve of the order-p Yule–Walker system R a = r via
/// Gaussian elimination with partial pivoting — the reference
/// levinson_durbin() must match.
std::vector<double> direct_toeplitz_solve(const std::vector<double>& r,
                                          std::size_t p) {
  std::vector<double> m(p * (p + 1));
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j)
      m[i * (p + 1) + j] = r[i > j ? i - j : j - i];
    m[i * (p + 1) + p] = r[i + 1];
  }
  for (std::size_t col = 0; col < p; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < p; ++row)
      if (std::abs(m[row * (p + 1) + col]) >
          std::abs(m[pivot * (p + 1) + col]))
        pivot = row;
    for (std::size_t j = 0; j <= p; ++j)
      std::swap(m[col * (p + 1) + j], m[pivot * (p + 1) + j]);
    for (std::size_t row = col + 1; row < p; ++row) {
      const double f = m[row * (p + 1) + col] / m[col * (p + 1) + col];
      for (std::size_t j = col; j <= p; ++j)
        m[row * (p + 1) + j] -= f * m[col * (p + 1) + j];
    }
  }
  std::vector<double> a(p);
  for (std::size_t i = p; i-- > 0;) {
    double acc = m[i * (p + 1) + p];
    for (std::size_t j = i + 1; j < p; ++j) acc -= m[i * (p + 1) + j] * a[j];
    a[i] = acc / m[i * (p + 1) + i];
  }
  return a;
}

TEST(ArtifactDetector, LevinsonDurbinMatchesDirectToeplitzSolve) {
  // Sample autocorrelation of a random smooth signal gives a well-posed
  // positive-definite Toeplitz system at every tested order.
  common::Rng rng(4242);
  std::vector<double> x(2048);
  double s = 0.0;
  for (double& v : x) {
    s = 0.9 * s + rng.normal(0.0, 1.0);  // AR(1) colouring.
    v = s;
  }
  for (const std::size_t p : {2u, 4u, 8u}) {
    SCOPED_TRACE("order " + std::to_string(p));
    std::vector<double> r(p + 1, 0.0);
    for (std::size_t k = 0; k <= p; ++k)
      for (std::size_t i = 0; i + k < x.size(); ++i) r[k] += x[i] * x[i + k];
    std::vector<double> a(p, 0.0);
    const double err = sensor::levinson_durbin(r, a);
    EXPECT_GT(err, 0.0);
    const std::vector<double> ref = direct_toeplitz_solve(r, p);
    for (std::size_t k = 0; k < p; ++k)
      EXPECT_NEAR(a[k], ref[k], 1e-8 * std::max(1.0, std::abs(ref[k])));
  }
}

TEST(ArtifactDetector, LevinsonDurbinRecoversAnalyticArOneCoefficient) {
  // AR(1) with coefficient rho has autocorrelation r[k] = rho^k; the
  // order-4 solve must put (nearly) all weight on the first lag.
  const double rho = 0.8;
  std::vector<double> r(5);
  for (std::size_t k = 0; k < r.size(); ++k) r[k] = std::pow(rho, k);
  std::vector<double> a(4, 0.0);
  sensor::levinson_durbin(r, a);
  EXPECT_NEAR(a[0], rho, 1e-12);
  for (std::size_t k = 1; k < a.size(); ++k) EXPECT_NEAR(a[k], 0.0, 1e-12);

  // Degenerate input zeroes the coefficients and reports zero error power.
  std::vector<double> zero(5, 0.0);
  std::vector<double> az(4, 1.0);
  EXPECT_EQ(sensor::levinson_durbin(zero, az), 0.0);
  for (const double c : az) EXPECT_EQ(c, 0.0);
}

TEST(ArtifactDetector, LpcResidualFlagsImpulseOnPredictableSignal) {
  // A sinusoid is almost perfectly linearly predictable: the residual RMS
  // adapts to near zero, so an additive impulse scores a huge residual z.
  sensor::ChannelArtifactDetector det;
  for (int i = 0; i < 800; ++i)
    det.accept(100.0 * std::sin(2.0 * kPi * i / 16.0));
  const sensor::ArtifactScores s =
      det.accept(100.0 * std::sin(2.0 * kPi * 800 / 16.0) + 500.0);
  EXPECT_EQ(s.residual, 1.0);
}

TEST(ArtifactDetector, ExcessKurtosisSeparatesImpulsiveFromGaussian) {
  common::Rng rng(9);
  sensor::ChannelArtifactDetector gaussian;
  sensor::ArtifactScores gs{};
  for (int i = 0; i < 1000; ++i) gs = gaussian.accept(rng.normal(0.0, 3.0));
  EXPECT_LT(std::abs(gaussian.excess_kurtosis()), 1.5);
  EXPECT_LT(gs.kurtosis, 1.0);

  // One +-A impulse every 8 samples: occupancy 1/8 gives kurtosis ~8,
  // excess ~5 — decisively above the saturation limit of 3.
  sensor::ChannelArtifactDetector impulsive;
  sensor::ArtifactScores is{};
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal(0.0, 1.0);
    if (i % 8 == 0) x += (i % 16 == 0) ? 200.0 : -200.0;
    is = impulsive.accept(x);
  }
  EXPECT_GT(impulsive.excess_kurtosis(), 3.0);
  EXPECT_EQ(is.kurtosis, 1.0);
}

TEST(ArtifactDetector, SpectralFlatnessSeparatesToneFromBroadbandNoise) {
  common::Rng rng(31);
  sensor::ChannelArtifactDetector noise;
  for (int i = 0; i < 512; ++i) noise.accept(rng.normal(0.0, 5.0));
  EXPECT_GT(noise.flatness(), 0.3);

  sensor::ChannelArtifactDetector tone;
  sensor::ArtifactScores ts{};
  for (int i = 0; i < 512; ++i)
    ts = tone.accept(50.0 * std::sin(2.0 * kPi * i / 8.0) +
                     rng.normal(0.0, 1.0));
  // Period 8 at a 64-sample window concentrates power in bin 8 — an
  // eligible flicker line well above flicker_min_bin.
  EXPECT_LT(tone.flatness(), tone.config().flatness_floor / 2.0);
  EXPECT_EQ(tone.dominant_bin(), 8u);
  EXPECT_GT(tone.dominant_fraction(), tone.config().flicker_fraction);
  EXPECT_EQ(ts.tonal, 1.0);
  EXPECT_EQ(ts.flicker, 1.0);
}

TEST(ArtifactDetector, BaselineVelocityTracksSlowDrift) {
  sensor::ChannelArtifactDetector det;
  common::Rng rng(55);
  sensor::ArtifactScores s{};
  // A 1 count/sample ramp: the EWMA velocity converges to the slope.
  for (int i = 0; i < 1500; ++i)
    s = det.accept(300.0 + 1.0 * i + rng.normal(0.0, 0.5));
  EXPECT_NEAR(det.baseline_velocity(), 1.0, 0.2);
  EXPECT_EQ(s.drift, 1.0);  // Default drift_velocity threshold is 0.35.

  // Level streams hold the velocity near zero.
  sensor::ChannelArtifactDetector flat;
  sensor::ArtifactScores fs{};
  for (int i = 0; i < 1500; ++i) fs = flat.accept(rng.normal(300.0, 2.0));
  EXPECT_LT(std::abs(flat.baseline_velocity()), 0.05);
  EXPECT_LT(fs.drift, 1.0);
}

TEST(ArtifactDetector, ResetRestoresFreshlyConstructedState) {
  common::Rng rng(101);
  std::vector<double> sequence(700);
  for (double& v : sequence) v = rng.normal(320.0, 6.0);

  sensor::ChannelArtifactDetector fresh;
  sensor::ChannelArtifactDetector reused;
  for (int i = 0; i < 300; ++i) reused.accept(1e6 + 137.0 * i);
  reused.reset();
  EXPECT_EQ(reused.samples(), 0u);

  for (const double v : sequence) {
    const sensor::ArtifactScores a = fresh.accept(v);
    const sensor::ArtifactScores b = reused.accept(v);
    EXPECT_EQ(a.click, b.click);
    EXPECT_EQ(a.residual, b.residual);
    EXPECT_EQ(a.kurtosis, b.kurtosis);
    EXPECT_EQ(a.tonal, b.tonal);
    EXPECT_EQ(a.drift, b.drift);
    EXPECT_EQ(a.flicker, b.flicker);
  }
  EXPECT_EQ(fresh.deriv_mean(), reused.deriv_mean());
  EXPECT_EQ(fresh.click_threshold(), reused.click_threshold());
  EXPECT_EQ(fresh.excess_kurtosis(), reused.excess_kurtosis());
  EXPECT_EQ(fresh.flatness(), reused.flatness());
  EXPECT_EQ(fresh.baseline_velocity(), reused.baseline_velocity());
}

// ------------------------------------------------ injector determinism

TEST(FaultInjectorStreams, NewClassStormsAreIndependentOfOtherClasses) {
  // Each class draws from its own split stream: the storm class K produces
  // must be identical whether K runs alone or alongside every other class.
  using Kind = sensor::FaultEvent::Kind;
  struct ClassCase {
    Kind kind;
    void (*enable)(sensor::FaultInjectorConfig&);
  };
  const ClassCase cases[] = {
      {Kind::kCrackle,
       [](sensor::FaultInjectorConfig& c) { c.crackle_rate = 0.002; }},
      {Kind::kStep,
       [](sensor::FaultInjectorConfig& c) { c.step_rate = 0.002; }},
      {Kind::kDrift,
       [](sensor::FaultInjectorConfig& c) { c.drift_rate = 0.002; }},
      {Kind::kFlicker,
       [](sensor::FaultInjectorConfig& c) { c.flicker_rate = 0.002; }},
  };

  for (const ClassCase& cc : cases) {
    SCOPED_TRACE(static_cast<int>(cc.kind));
    sensor::FaultInjectorConfig solo;
    cc.enable(solo);

    sensor::FaultInjectorConfig all;
    all.dropout_rate = 0.002;
    all.glitch_rate = 0.002;
    for (const ClassCase& other : cases) other.enable(all);

    sensor::FaultInjector solo_injector(solo, 2024);
    sensor::FaultInjector all_injector(all, 2024);
    solo_injector.corrupt(long_probe());
    all_injector.corrupt(long_probe());

    auto filter = [&](const sensor::FaultInjector& inj) {
      std::vector<sensor::FaultEvent> out;
      for (const sensor::FaultEvent& e : inj.log())
        if (e.kind == cc.kind) out.push_back(e);
      return out;
    };
    const auto solo_events = filter(solo_injector);
    const auto all_events = filter(all_injector);
    ASSERT_FALSE(solo_events.empty());
    ASSERT_EQ(solo_events.size(), all_events.size());
    for (std::size_t i = 0; i < solo_events.size(); ++i) {
      EXPECT_EQ(solo_events[i].channel, all_events[i].channel);
      EXPECT_EQ(solo_events[i].begin, all_events[i].begin);
      EXPECT_EQ(solo_events[i].end, all_events[i].end);
    }
  }
}

// -------------------------------------------- injector-vs-detector sweeps

TEST(ArtifactSweep, CleanTrafficTakesNoActionAndStaysByteIdentical) {
  // The false-positive gate: the fully armed graded policy (repair +
  // escalation) must take zero actions on the clean corpus, leaving the
  // emissions bit-identical to strict mode.
  core::Session strict(trained_bundle());
  const auto strict_events = strict.process_trace(long_probe());

  core::Session graded(trained_bundle(), graded_policy());
  const auto graded_events = graded.process_trace(long_probe());

  expect_events_identical(strict_events, graded_events);
  const auto& obs = graded.observability();
  EXPECT_EQ(counter(graded, obs.artifact_impulse_detected), 0u);
  EXPECT_EQ(counter(graded, obs.artifact_impulse_repaired), 0u);
  EXPECT_EQ(counter(graded, obs.artifact_quarantines), 0u);
  EXPECT_TRUE(graded.health().clean());

  // Graded suspicion is allowed on clean traffic (it is the false-alarm
  // proxy the counters exist to measure) but must stay rare.
  const std::uint64_t frames = graded.health().frames;
  ASSERT_GT(frames, 0u);
  EXPECT_LE(counter(graded, obs.artifact_impulse_suspect), frames / 20);
}

TEST(ArtifactSweep, GlitchImpulsesAreDetectedAndRepairedAcrossRatesAndSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const double rate : {0.002, 0.01}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " rate " +
                   std::to_string(rate));
      sensor::FaultInjectorConfig config;
      config.glitch_rate = rate;
      config.glitch_magnitude = storm_magnitude();
      sensor::FaultInjector injector(config, seed);
      const auto corrupted = injector.corrupt(long_probe());

      std::size_t injected = 0;  // Glitches the detectors had a shot at.
      for (const sensor::FaultEvent& e : injector.log())
        if (e.kind == sensor::FaultEvent::Kind::kGlitch &&
            e.begin >= 100 && e.begin + 8 < corrupted.sample_count())
          ++injected;
      ASSERT_GT(injected, 0u);

      // Escalation off isolates the repair path: every detected impulse
      // must resolve by repair, never by quarantine.
      core::FaultPolicy policy = graded_policy();
      policy.artifact.escalate = false;
      core::Session session(trained_bundle(), policy);
      session.process_trace(corrupted);

      const auto& obs = session.observability();
      const std::uint64_t repaired =
          counter(session, obs.artifact_impulse_repaired);
      EXPECT_GE(counter(session, obs.artifact_impulse_detected), repaired);
      EXPECT_GE(repaired, (injected * 3) / 5)
          << "repaired " << repaired << " of " << injected;
      EXPECT_EQ(counter(session, obs.artifact_quarantines), 0u);
      EXPECT_EQ(session.health().quarantines, 0u);
      EXPECT_EQ(session.health().frames, corrupted.sample_count());
    }
  }
}

TEST(ArtifactSweep, CrackleTrainsEscalateToClassifiedQuarantine) {
  for (const std::uint64_t seed : {5ull, 6ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sensor::FaultInjectorConfig config;
    config.crackle_rate = 0.001;
    config.crackle_magnitude = storm_magnitude();
    sensor::FaultInjector injector(config, seed);
    const auto corrupted = injector.corrupt(long_probe());
    ASSERT_FALSE(injector.log().empty());

    core::Session session(trained_bundle(), graded_policy());
    session.process_trace(corrupted);

    const auto& obs = session.observability();
    EXPECT_GE(counter(session, obs.artifact_crackle_detected), 1u);
    EXPECT_GE(counter(session, obs.artifact_quarantines), 1u);
    EXPECT_GE(session.health().quarantines, 1u);
  }
}

TEST(ArtifactSweep, StepFaultsClassifyAsStepAndRecalibrate) {
  for (const std::uint64_t seed : {7ull, 8ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sensor::FaultInjectorConfig config;
    config.step_rate = 0.0006;
    config.step_magnitude = storm_magnitude();
    sensor::FaultInjector injector(config, seed);
    const auto corrupted = injector.corrupt(long_probe());
    ASSERT_FALSE(injector.log().empty());

    core::Session session(trained_bundle(), graded_policy());
    session.process_trace(corrupted);

    const auto& obs = session.observability();
    EXPECT_GE(counter(session, obs.artifact_step_detected), 1u);
    EXPECT_GE(session.health().quarantines, 1u);
    // The stream is healthy again on the shifted level: recovery must
    // have recalibrated at least once.
    EXPECT_GE(session.health().recalibrations, 1u);
  }
}

TEST(ArtifactSweep, SlowBaselineDriftEscalates) {
  for (const std::uint64_t seed : {9ull, 10ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    core::FaultPolicy policy = graded_policy();
    // The drift detector, not the saturation rail, is under test here.
    policy.saturation_level = std::numeric_limits<double>::infinity();
    const double slope = 8.0 * policy.artifact.detector.drift_velocity;

    sensor::FaultInjectorConfig config;
    config.drift_rate = 0.001;
    config.drift_run = 400;
    config.drift_magnitude = slope * static_cast<double>(config.drift_run);
    sensor::FaultInjector injector(config, seed);
    const auto corrupted = injector.corrupt(long_probe());
    ASSERT_FALSE(injector.log().empty());

    core::Session session(trained_bundle(), policy);
    session.process_trace(corrupted);

    const auto& obs = session.observability();
    EXPECT_GE(counter(session, obs.artifact_drift_detected), 1u);
    EXPECT_GE(counter(session, obs.artifact_quarantines), 1u);
  }
}

TEST(ArtifactSweep, PeriodicFlickerEscalates) {
  for (const std::uint64_t seed : {11ull, 12ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    core::FaultPolicy policy = graded_policy();

    sensor::FaultInjectorConfig config;
    config.flicker_rate = 0.001;
    config.flicker_run = 600;
    config.flicker_period = 8;
    config.flicker_magnitude = 4.0 * clean_profile().max_dx;
    sensor::FaultInjector injector(config, seed);
    const auto corrupted = injector.corrupt(long_probe());
    ASSERT_FALSE(injector.log().empty());

    core::Session session(trained_bundle(), policy);
    session.process_trace(corrupted);

    const auto& obs = session.observability();
    EXPECT_GE(counter(session, obs.artifact_flicker_detected), 1u);
    EXPECT_GE(counter(session, obs.artifact_quarantines), 1u);
  }
}

TEST(ArtifactSweep, DetectOnlySustainedImpulsivityClassifiesCrackle) {
  // With repair disabled the LPC-residual/kurtosis path is the backstop:
  // a long dense impulse train must still classify as crackle.
  core::FaultPolicy policy = graded_policy();
  policy.artifact.repair = false;
  policy.artifact.impulsive_sustain = 48;

  sensor::MultiChannelTrace corrupted = long_probe();
  auto& ch = corrupted.mutable_channel(0);
  ASSERT_GT(ch.size(), 1200u);
  for (std::size_t i = 300; i < 1100; i += 8)
    ch[i] += (i % 16 == 0) ? storm_magnitude() : -storm_magnitude();

  core::Session session(trained_bundle(), policy);
  session.process_trace(corrupted);

  const auto& obs = session.observability();
  EXPECT_EQ(counter(session, obs.artifact_impulse_repaired), 0u);
  EXPECT_GE(counter(session, obs.artifact_crackle_detected), 1u);
  EXPECT_GE(counter(session, obs.artifact_quarantines), 1u);
}

TEST(ArtifactSweep, StormRepliesAreDeterministic) {
  // Same seed, same storm, same counters and events on every replay.
  sensor::FaultInjectorConfig config;
  config.glitch_rate = 0.005;
  config.glitch_magnitude = storm_magnitude();
  config.crackle_rate = 0.0005;
  config.crackle_magnitude = storm_magnitude();
  config.step_rate = 0.0003;
  config.step_magnitude = storm_magnitude();

  auto run = [&] {
    sensor::FaultInjector injector(config, 303);
    const auto corrupted = injector.corrupt(long_probe());
    core::Session session(trained_bundle(), graded_policy());
    auto events = session.process_trace(corrupted);
    const auto& obs = session.observability();
    return std::pair{std::move(events),
                     std::vector<std::uint64_t>{
                         counter(session, obs.artifact_impulse_repaired),
                         counter(session, obs.artifact_crackle_detected),
                         counter(session, obs.artifact_step_detected),
                         counter(session, obs.artifact_quarantines),
                         session.health().quarantines}};
  };
  const auto a = run();
  const auto b = run();
  expect_events_identical(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --------------------------------------------------- repair exactness

/// A synthetic on-grid prefix (values and slopes exactly representable)
/// followed by a real recorded gesture: exact repair of a corrupted prefix
/// must leave the gesture's decoded events byte-identical.
sensor::MultiChannelTrace grid_prefix_plus_gesture() {
  const auto& gesture = probe_corpus().samples.front().trace;
  sensor::MultiChannelTrace trace(gesture.channel_count(),
                                  gesture.sample_rate_hz());
  std::vector<double> frame(gesture.channel_count());
  for (std::size_t i = 0; i < 400; ++i) {
    for (std::size_t c = 0; c < frame.size(); ++c) {
      // Integer dither around each channel's own gesture baseline (so the
      // prefix-to-gesture junction stays far below the repair floor),
      // with a slope-2 integer ramp over [200, 212) so interpolation
      // across a repair gap is exact.
      const double base = std::floor(gesture.channel(c)[0]);
      if (i >= 200 && i < 212)
        frame[c] = base + static_cast<double>((199 + c) % 7) +
                   2.0 * static_cast<double>(i - 199);
      else if (i >= 212)
        frame[c] = base + 24.0 + static_cast<double>((i + c) % 7);
      else
        frame[c] = base + static_cast<double>((i + c) % 7);
    }
    trace.push_frame(frame);
  }
  trace.append(gesture);
  return trace;
}

/// Repair-armed policy scaled to the small on-grid prefix.
core::FaultPolicy grid_policy() {
  core::FaultPolicy policy = graded_policy();
  policy.artifact.repair_min_step = 64.0;
  return policy;
}

TEST(ArtifactRepair, ExactRepairIsByteIdenticalToCleanTrace) {
  const sensor::MultiChannelTrace clean = grid_prefix_plus_gesture();

  sensor::MultiChannelTrace corrupted = clean;
  corrupted.mutable_channel(0)[205] += 4096.0;

  core::Session clean_session(trained_bundle(), grid_policy());
  const auto clean_events = clean_session.process_trace(clean);
  EXPECT_EQ(counter(clean_session,
                    clean_session.observability().artifact_impulse_detected),
            0u);
  ASSERT_FALSE(clean_events.empty());

  core::Session repaired_session(trained_bundle(), grid_policy());
  const auto repaired_events = repaired_session.process_trace(corrupted);

  // The impulse sits mid-ramp: the interpolated value equals the clean
  // sample bit-for-bit, so the gesture recorded after the corruption
  // decodes into byte-identical events.
  expect_events_identical(clean_events, repaired_events);
  const auto& obs = repaired_session.observability();
  EXPECT_EQ(counter(repaired_session, obs.artifact_impulse_repaired), 1u);
  EXPECT_EQ(counter(repaired_session, obs.artifact_repaired_frames), 1u);
  EXPECT_EQ(counter(repaired_session, obs.artifact_quarantines), 0u);
  EXPECT_EQ(repaired_session.health().quarantines, 0u);
  EXPECT_EQ(repaired_session.health().frames, corrupted.sample_count());
}

TEST(ArtifactRepair, TwoFrameGapRepairsExactly) {
  const sensor::MultiChannelTrace clean = grid_prefix_plus_gesture();

  sensor::MultiChannelTrace corrupted = clean;
  corrupted.mutable_channel(0)[205] += 4096.0;
  corrupted.mutable_channel(0)[206] -= 3000.0;

  core::Session clean_session(trained_bundle(), grid_policy());
  const auto clean_events = clean_session.process_trace(clean);

  core::Session repaired_session(trained_bundle(), grid_policy());
  const auto repaired_events = repaired_session.process_trace(corrupted);

  expect_events_identical(clean_events, repaired_events);
  const auto& obs = repaired_session.observability();
  EXPECT_EQ(counter(repaired_session, obs.artifact_impulse_repaired), 1u);
  EXPECT_EQ(counter(repaired_session, obs.artifact_repaired_frames), 2u);
}

TEST(ArtifactRepair, HoldOverflowWithoutEscalationIsPureDelay) {
  // A sustained offset overflows the hold; with escalation off the raw
  // frames are released through the unchanged pipeline — downstream must
  // be identical to never having held at all (repair disabled).
  sensor::MultiChannelTrace corrupted = grid_prefix_plus_gesture();
  for (std::size_t i = 205; i < 215; ++i)
    corrupted.mutable_channel(0)[i] += 4096.0;

  core::FaultPolicy hold_policy = grid_policy();
  hold_policy.artifact.escalate = false;
  core::Session holding(trained_bundle(), hold_policy);
  const auto held_events = holding.process_trace(corrupted);

  core::FaultPolicy raw_policy = hold_policy;
  raw_policy.artifact.repair = false;
  core::Session raw(trained_bundle(), raw_policy);
  const auto raw_events = raw.process_trace(corrupted);

  expect_events_identical(held_events, raw_events);
  const auto& obs = holding.observability();
  EXPECT_GE(counter(holding, obs.artifact_impulse_detected), 1u);
  EXPECT_EQ(counter(holding, obs.artifact_impulse_repaired), 0u);
  EXPECT_EQ(counter(holding, obs.artifact_quarantines), 0u);
  EXPECT_EQ(holding.health().frames, corrupted.sample_count());
}

TEST(ArtifactRepair, SettledOverflowWithEscalationClassifiesStep) {
  // The same sustained offset with escalation on: the held values settled
  // on the new level, so the episode classifies as a zipper/step.
  sensor::MultiChannelTrace corrupted = grid_prefix_plus_gesture();
  for (std::size_t i = 205; i < 260; ++i)
    corrupted.mutable_channel(0)[i] += 4096.0;

  core::Session session(trained_bundle(), grid_policy());
  session.process_trace(corrupted);

  const auto& obs = session.observability();
  EXPECT_GE(counter(session, obs.artifact_step_detected), 1u);
  EXPECT_GE(counter(session, obs.artifact_quarantines), 1u);
  EXPECT_GE(session.health().quarantines, 1u);
}

}  // namespace
}  // namespace airfinger
