// Unit tests for the acquisition substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sensor/adc.hpp"
#include "sensor/prototype.hpp"
#include "sensor/recorder.hpp"
#include "sensor/trace.hpp"

namespace airfinger::sensor {
namespace {

// ---------------------------------------------------------------- trace

TEST(Trace, PushFrameAndAccessors) {
  MultiChannelTrace t(2, 100.0);
  t.push_frame(std::vector<double>{1.0, 2.0});
  t.push_frame(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(t.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(t.duration_s(), 0.02);
  EXPECT_DOUBLE_EQ(t.channel(0)[1], 3.0);
  EXPECT_DOUBLE_EQ(t.channel(1)[0], 2.0);
}

TEST(Trace, SummedAddsChannels) {
  MultiChannelTrace t(3, 100.0);
  t.push_frame(std::vector<double>{1, 2, 3});
  const auto s = t.summed();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 6.0);
}

TEST(Trace, SliceExtractsRange) {
  MultiChannelTrace t(1, 50.0);
  for (int i = 0; i < 10; ++i)
    t.push_frame(std::vector<double>{static_cast<double>(i)});
  const auto s = t.slice(2, 5);
  EXPECT_EQ(s.sample_count(), 3u);
  EXPECT_DOUBLE_EQ(s.channel(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(s.channel(0)[2], 4.0);
}

TEST(Trace, AppendConcatenates) {
  MultiChannelTrace a(1, 100.0), b(1, 100.0);
  a.push_frame(std::vector<double>{1.0});
  b.push_frame(std::vector<double>{2.0});
  a.append(b);
  EXPECT_EQ(a.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(a.channel(0)[1], 2.0);
}

TEST(Trace, MismatchedAppendThrows) {
  MultiChannelTrace a(1, 100.0), b(2, 100.0), c(1, 50.0);
  EXPECT_THROW(a.append(b), PreconditionError);
  EXPECT_THROW(a.append(c), PreconditionError);
}

TEST(Trace, BadFrameArityThrows) {
  MultiChannelTrace t(2, 100.0);
  EXPECT_THROW(t.push_frame(std::vector<double>{1.0}), PreconditionError);
}

// ---------------------------------------------------------------- adc

TEST(Adc, OutputWithinRange) {
  AdcModel adc{AdcSpec{}};
  common::Rng rng(1);
  for (double v = -0.01; v < 0.02; v += 0.0005) {
    const double counts = adc.convert(v, rng);
    EXPECT_GE(counts, 0.0);
    EXPECT_LE(counts, adc.full_scale());
  }
}

TEST(Adc, SaturatesAtFullScale) {
  AdcModel adc{AdcSpec{}};
  common::Rng rng(2);
  EXPECT_DOUBLE_EQ(adc.convert(100.0, rng), adc.full_scale());
  EXPECT_TRUE(adc.would_saturate(100.0));
  EXPECT_FALSE(adc.would_saturate(0.0));
}

TEST(Adc, MonotoneInInputOnAverage) {
  AdcModel adc{AdcSpec{}};
  common::Rng rng(3);
  double lo = 0.0, hi = 0.0;
  for (int i = 0; i < 300; ++i) {
    lo += adc.convert(0.002, rng);
    hi += adc.convert(0.004, rng);
  }
  EXPECT_GT(hi, lo);
}

TEST(Adc, NoiselessIsDeterministicAndQuantized) {
  AdcSpec spec;
  spec.thermal_noise_v = 0.0;
  spec.shot_noise_coeff = 0.0;
  AdcModel adc(spec);
  common::Rng rng(4);
  const double a = adc.convert(0.003, rng);
  const double b = adc.convert(0.003, rng);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, std::floor(a));  // integer counts
}

TEST(Adc, ThermalNoiseHasExpectedScale) {
  AdcSpec spec;
  spec.thermal_noise_v = 2e-3;  // ≈ 2 counts at 10 bits / 1 V
  spec.shot_noise_coeff = 0.0;
  AdcModel adc(spec);
  common::Rng rng(5);
  std::vector<double> samples;
  // 0.004 photocurrent × gain 100 = 0.42 V incl. offset: mid-scale.
  for (int i = 0; i < 4000; ++i) samples.push_back(adc.convert(0.004, rng));
  const double sd = common::stddev(samples);
  EXPECT_NEAR(sd, 2e-3 * 1023.0, 0.5);
}

TEST(Adc, GlitchesInjectOutliers) {
  AdcSpec spec;
  spec.glitch_probability = 0.2;
  spec.glitch_magnitude_v = 0.3;
  AdcModel adc(spec);
  common::Rng rng(6);
  double max_dev = 0.0;
  for (int i = 0; i < 500; ++i)
    max_dev = std::max(max_dev,
                       std::fabs(adc.convert(0.004, rng) - 0.42 * 1023.0));
  EXPECT_GT(max_dev, 50.0);  // at least one large glitch observed
}

TEST(Adc, InvalidSpecThrows) {
  AdcSpec bad;
  bad.bits = 0;
  EXPECT_THROW(AdcModel{bad}, PreconditionError);
  AdcSpec negative;
  negative.gain = -1.0;
  EXPECT_THROW(AdcModel{negative}, PreconditionError);
}

// ---------------------------------------------------------------- recorder

TEST(Recorder, ProducesExpectedFrameCount) {
  optics::AmbientConditions night;
  night.hour_of_day = 2.0;
  optics::Scene scene =
      optics::make_prototype_scene({}, optics::AmbientModel(night));
  Recorder recorder(scene, AdcModel{AdcSpec{}}, 100.0);
  common::Rng rng(7);
  const auto trace = recorder.record(
      [](double) { return SceneState{}; }, 1.5, rng);
  EXPECT_EQ(trace.sample_count(), 150u);
  EXPECT_EQ(trace.channel_count(), 3u);
}

TEST(Recorder, DeterministicGivenSameSeed) {
  optics::Scene scene = optics::make_prototype_scene();
  Recorder recorder(scene, AdcModel{AdcSpec{}}, 100.0);
  auto provider = [](double t) {
    SceneState s;
    optics::ReflectorPatch finger;
    finger.position = {0, 0, 0.02 + 0.002 * std::sin(6.28 * t)};
    s.patches.push_back(finger);
    return s;
  };
  common::Rng rng_a(99), rng_b(99);
  const auto a = recorder.record(provider, 0.5, rng_a);
  const auto b = recorder.record(provider, 0.5, rng_b);
  for (std::size_t c = 0; c < a.channel_count(); ++c)
    for (std::size_t i = 0; i < a.sample_count(); ++i)
      EXPECT_DOUBLE_EQ(a.channel(c)[i], b.channel(c)[i]);
}

TEST(Recorder, MovingFingerModulatesSignal) {
  optics::AmbientConditions night;
  night.hour_of_day = 2.0;
  optics::Scene scene =
      optics::make_prototype_scene({}, optics::AmbientModel(night));
  Recorder recorder(scene, AdcModel{AdcSpec{}}, 100.0);
  common::Rng rng(11);
  auto provider = [](double t) {
    SceneState s;
    optics::ReflectorPatch finger;
    finger.position = {0, 0, 0.015 + 0.008 * std::sin(6.28 * 2.0 * t)};
    s.patches.push_back(finger);
    return s;
  };
  const auto trace = recorder.record(provider, 1.0, rng);
  const auto centre = trace.channel(1);
  EXPECT_GT(common::stddev(centre), 10.0);  // strong modulation in counts
}

// ---------------------------------------------------------------- prototype

TEST(Prototype, BundlesSceneAndGeometry) {
  Prototype proto;
  EXPECT_EQ(proto.pd_count(), 3u);
  EXPECT_DOUBLE_EQ(proto.sample_rate_hz(), 100.0);
  EXPECT_LT(proto.pd_x(0), proto.pd_x(1));
  EXPECT_LT(proto.pd_x(1), proto.pd_x(2));
}

TEST(Prototype, AmbientSwapTakesEffect) {
  Prototype proto;
  common::Rng rng(1);
  auto idle = [](double) { return SceneState{}; };

  optics::AmbientConditions night;
  night.hour_of_day = 2.0;
  proto.set_ambient(night);
  const auto dark = proto.record(idle, 0.3, rng);

  optics::AmbientConditions noon;
  noon.hour_of_day = 13.0;
  proto.set_ambient(noon);
  const auto bright = proto.record(idle, 0.3, rng);

  EXPECT_GT(common::mean(bright.channel(1)), common::mean(dark.channel(1)));
}

}  // namespace
}  // namespace airfinger::sensor
