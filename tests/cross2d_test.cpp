// Tests for the cross board and the ZEBRA-2D swipe tracker.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/zebra2d.hpp"
#include "sensor/recorder.hpp"
#include "synth/trajectory.hpp"

namespace airfinger {
namespace {

constexpr double kPi = std::numbers::pi;

// ------------------------------------------------------------ geometry

TEST(CrossBoard, GeometryIsACross) {
  const optics::CrossBoardLayout layout;
  using optics::CrossChannel;
  const auto xm = optics::cross_pd_position(layout, CrossChannel::kXMinus);
  const auto xp = optics::cross_pd_position(layout, CrossChannel::kXPlus);
  const auto ym = optics::cross_pd_position(layout, CrossChannel::kYMinus);
  const auto yp = optics::cross_pd_position(layout, CrossChannel::kYPlus);
  const auto c = optics::cross_pd_position(layout, CrossChannel::kCentre);
  EXPECT_DOUBLE_EQ(xm.x, -xp.x);
  EXPECT_DOUBLE_EQ(ym.y, -yp.y);
  EXPECT_DOUBLE_EQ(c.norm(), 0.0);
  EXPECT_DOUBLE_EQ(xm.y, 0.0);
  EXPECT_DOUBLE_EQ(ym.x, 0.0);
}

TEST(CrossBoard, SceneHasFivePdsFourLeds) {
  const auto scene = optics::make_cross_scene();
  EXPECT_EQ(scene.pd_count(), 5u);
  EXPECT_EQ(scene.led_count(), 4u);
}

TEST(CrossBoard, FingerOnEachArmFavoursThatChannel) {
  optics::AmbientConditions night;
  night.hour_of_day = 2.0;
  const auto scene =
      optics::make_cross_scene({}, optics::AmbientModel(night));
  optics::ReflectorPatch finger;
  finger.position = {0.007, 0.0, 0.018};
  auto rss = scene.evaluate({&finger, 1}, 0.0);
  using optics::CrossChannel;
  EXPECT_GT(rss[static_cast<std::size_t>(CrossChannel::kXPlus)],
            rss[static_cast<std::size_t>(CrossChannel::kXMinus)]);
  finger.position = {0.0, -0.007, 0.018};
  rss = scene.evaluate({&finger, 1}, 0.0);
  EXPECT_GT(rss[static_cast<std::size_t>(CrossChannel::kYMinus)],
            rss[static_cast<std::size_t>(CrossChannel::kYPlus)]);
}

// ------------------------------------------------------------ direction8

TEST(Direction8, SectorsAreCorrect) {
  using core::SwipeDirection8;
  EXPECT_EQ(core::to_direction8(0.0), SwipeDirection8::kEast);
  EXPECT_EQ(core::to_direction8(kPi / 2), SwipeDirection8::kNorth);
  EXPECT_EQ(core::to_direction8(kPi), SwipeDirection8::kWest);
  EXPECT_EQ(core::to_direction8(-kPi / 2), SwipeDirection8::kSouth);
  EXPECT_EQ(core::to_direction8(kPi / 4), SwipeDirection8::kNorthEast);
  EXPECT_EQ(core::to_direction8(-3 * kPi / 4), SwipeDirection8::kSouthWest);
  // Sector boundaries snap to the nearest compass point.
  EXPECT_EQ(core::to_direction8(0.1), SwipeDirection8::kEast);
  EXPECT_EQ(core::to_direction8(kPi / 2 - 0.1), SwipeDirection8::kNorth);
}

// ------------------------------------------------------------ tracking

/// Records a straight swipe across the cross board at the given angle.
core::ProcessedTrace record_swipe(double angle_rad, std::uint64_t seed) {
  optics::AmbientConditions night;
  night.hour_of_day = 2.0;
  const auto scene =
      optics::make_cross_scene({}, optics::AmbientModel(night));
  sensor::AdcSpec adc;
  adc.gain = 90.0;
  sensor::Recorder recorder(scene, sensor::AdcModel(adc), 100.0);

  const double standoff = 0.018;
  const optics::Vec3 dir{std::cos(angle_rad), std::sin(angle_rad), 0.0};
  auto provider = [=](double t) {
    sensor::SceneState state;
    optics::ReflectorPatch finger;
    const double T = 1.4;
    const double s = synth::minimum_jerk(std::clamp(
        (t - 0.4) / (T - 0.8), 0.0, 1.0));
    finger.position = dir * (-0.025 + 0.05 * s);
    finger.position.z = standoff;
    // Entry/exit lift like a real swipe.
    const double raw = std::clamp((t - 0.4) / (T - 0.8), 0.0, 1.0);
    const double entry = std::max(0.0, 1.0 - raw / 0.2);
    const double exit = std::max(0.0, (raw - 0.8) / 0.2);
    finger.position.z += 0.025 * (entry * entry + exit * exit);
    state.patches.push_back(finger);
    return state;
  };
  common::Rng rng(seed);
  const auto trace = recorder.record(provider, 1.4, rng);
  const core::DataProcessor processor;
  return processor.process(trace);
}

TEST(Zebra2d, TracksCardinalSwipes) {
  const core::Zebra2dTracker tracker;
  const struct {
    double angle;
    core::SwipeDirection8 expected;
  } cases[] = {
      {0.0, core::SwipeDirection8::kEast},
      {kPi / 2, core::SwipeDirection8::kNorth},
      {kPi, core::SwipeDirection8::kWest},
      {-kPi / 2, core::SwipeDirection8::kSouth},
  };
  for (const auto& c : cases) {
    const auto p = record_swipe(c.angle, 11);
    const auto swipe =
        tracker.track(p, {0, p.energy.size()});
    ASSERT_TRUE(swipe.has_value()) << "angle " << c.angle;
    EXPECT_EQ(core::to_direction8(swipe->angle_rad), c.expected)
        << "angle " << c.angle << " got " << swipe->angle_rad;
  }
}

TEST(Zebra2d, DiagonalSwipeActivatesBothAxes) {
  const core::Zebra2dTracker tracker;
  const auto p = record_swipe(kPi / 4, 13);
  const auto swipe = tracker.track(p, {0, p.energy.size()});
  ASSERT_TRUE(swipe.has_value());
  EXPECT_GT(swipe->direction_x, 0.0);
  EXPECT_GT(swipe->direction_y, 0.0);
  EXPECT_GT(swipe->speed_mps, 0.0);
}

TEST(Zebra2d, RequiresFiveChannels) {
  core::ProcessedTrace p;
  p.sample_rate_hz = 100.0;
  p.delta_rss2.assign(3, std::vector<double>(50, 1.0));
  p.energy.assign(50, 3.0);
  const core::Zebra2dTracker tracker;
  EXPECT_THROW(tracker.track(p, {0, 50}), PreconditionError);
}

TEST(Zebra2d, QuietSceneReturnsNothing) {
  core::ProcessedTrace p;
  p.sample_rate_hz = 100.0;
  p.delta_rss2.assign(5, std::vector<double>(80, 0.2));
  p.energy.assign(80, 1.0);
  const core::Zebra2dTracker tracker;
  EXPECT_FALSE(tracker.track(p, {0, 80}).has_value());
}

}  // namespace
}  // namespace airfinger
