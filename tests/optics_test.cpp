// Unit tests for the photometric NIR substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "optics/ambient.hpp"
#include "optics/emitter.hpp"
#include "optics/photodiode.hpp"
#include "optics/scene.hpp"
#include "optics/vec3.hpp"

namespace airfinger::optics {
namespace {

constexpr double kDeg = 3.14159265358979 / 180.0;

// ---------------------------------------------------------------- Vec3

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5);
  EXPECT_DOUBLE_EQ((b - a).z, 3);
  EXPECT_DOUBLE_EQ(a.dot(b), 32);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3);
  EXPECT_DOUBLE_EQ(c.y, 6);
  EXPECT_DOUBLE_EQ(c.z, -3);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}.norm()), 5.0);
}

TEST(Vec3, NormalizedUnitLength) {
  const Vec3 v = Vec3{1, 2, 2}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  const Vec3 zero = Vec3{}.normalized();
  EXPECT_DOUBLE_EQ(zero.norm(), 0.0);
}

// ---------------------------------------------------------------- LED

TEST(NirLed, InverseSquareFalloff) {
  NirLed led({}, {0, 0, 0}, {0, 0, 1});
  const double e1 = led.irradiance_at({0, 0, 0.01});
  const double e2 = led.irradiance_at({0, 0, 0.02});
  EXPECT_NEAR(e1 / e2, 4.0, 1e-9);
}

TEST(NirLed, OnAxisBrighterThanOffAxis) {
  NirLed led({}, {0, 0, 0}, {0, 0, 1});
  const double on = led.irradiance_at({0, 0, 0.02});
  const double off = led.irradiance_at({0.008, 0, 0.02});
  EXPECT_GT(on, off);
  EXPECT_GT(off, 0.0);
}

TEST(NirLed, HalfPowerAtHalfAngle) {
  NirLedSpec spec;
  spec.viewing_angle_deg = 20.0;
  NirLed led(spec, {0, 0, 0}, {0, 0, 1});
  const double d = 0.05;
  const double on = led.irradiance_at({0, 0, d});
  // Point at the 10° half-angle, same distance.
  const double theta = 10.0 * kDeg;
  const double off =
      led.irradiance_at({d * std::sin(theta), 0, d * std::cos(theta)});
  EXPECT_NEAR(off / on, 0.5, 0.02);
}

TEST(NirLed, NothingBehindEmitter) {
  NirLed led({}, {0, 0, 0}, {0, 0, 1});
  EXPECT_DOUBLE_EQ(led.irradiance_at({0, 0, -0.01}), 0.0);
}

TEST(NirLed, PowerScalesLinearly) {
  NirLedSpec weak, strong;
  weak.power_mw = 10;
  strong.power_mw = 30;
  NirLed a(weak, {0, 0, 0}, {0, 0, 1});
  NirLed b(strong, {0, 0, 0}, {0, 0, 1});
  const Vec3 p{0.001, 0, 0.02};
  EXPECT_NEAR(b.irradiance_at(p) / a.irradiance_at(p), 3.0, 1e-9);
}

TEST(NirLed, InvalidSpecThrows) {
  NirLedSpec bad;
  bad.viewing_angle_deg = 0.0;
  EXPECT_THROW(NirLed(bad, {}, {0, 0, 1}), PreconditionError);
  NirLedSpec negative;
  negative.power_mw = -1.0;
  EXPECT_THROW(NirLed(negative, {}, {0, 0, 1}), PreconditionError);
  EXPECT_THROW(NirLed({}, {}, Vec3{}), PreconditionError);
}

// ---------------------------------------------------------------- PD

TEST(NirPhotodiode, AcceptanceDecreasesWithAngle) {
  NirPhotodiode pd({}, {0, 0, 0}, {0, 0, 1});
  const double a0 = pd.acceptance_from({0, 0, 0.02});
  const double a20 = pd.acceptance_from({0.007, 0, 0.02});
  const double a40 = pd.acceptance_from({0.017, 0, 0.02});
  EXPECT_GT(a0, a20);
  EXPECT_GT(a20, a40);
  EXPECT_NEAR(a0, 1.0, 1e-9);
}

TEST(NirPhotodiode, ShieldBlocksBeyondTaper) {
  NirPhotodiodeSpec spec;
  spec.viewing_angle_deg = 80.0;
  spec.shield_fov_factor = 0.6;  // 24° + 10° taper → blind beyond 34°
  NirPhotodiode pd(spec, {0, 0, 0}, {0, 0, 1});
  const double theta = 40.0 * kDeg;
  const double d = 0.05;
  EXPECT_DOUBLE_EQ(
      pd.acceptance_from({d * std::sin(theta), 0, d * std::cos(theta)}),
      0.0);
}

TEST(NirPhotodiode, NothingBehindSensorPlane) {
  NirPhotodiode pd({}, {0, 0, 0}, {0, 0, 1});
  EXPECT_DOUBLE_EQ(pd.acceptance_from({0, 0, -0.01}), 0.0);
}

TEST(NirPhotodiode, PatchSignalInverseSquare) {
  NirPhotodiode pd({}, {0, 0, 0}, {0, 0, 1});
  const double s1 =
      pd.signal_from_patch({0, 0, 0.01}, {0, 0, -1}, 1000.0, 1e-4);
  const double s2 =
      pd.signal_from_patch({0, 0, 0.02}, {0, 0, -1}, 1000.0, 1e-4);
  EXPECT_NEAR(s1 / s2, 4.0, 1e-9);
}

TEST(NirPhotodiode, PatchFacingAwayGivesNothing) {
  NirPhotodiode pd({}, {0, 0, 0}, {0, 0, 1});
  EXPECT_DOUBLE_EQ(
      pd.signal_from_patch({0, 0, 0.02}, {0, 0, 1}, 1000.0, 1e-4), 0.0);
}

TEST(NirPhotodiode, AmbientScalesWithTransmission) {
  NirPhotodiodeSpec open, closed;
  open.shield_ambient_transmission = 0.5;
  closed.shield_ambient_transmission = 0.25;
  NirPhotodiode a(open, {}, {0, 0, 1});
  NirPhotodiode b(closed, {}, {0, 0, 1});
  EXPECT_NEAR(a.signal_from_ambient(100.0) / b.signal_from_ambient(100.0),
              2.0, 1e-9);
}

// ---------------------------------------------------------------- ambient

TEST(Ambient, NightIsDark) {
  EXPECT_DOUBLE_EQ(AmbientModel::solar_nir_irradiance(3.0), 0.0);
  EXPECT_DOUBLE_EQ(AmbientModel::solar_nir_irradiance(22.0), 0.0);
}

TEST(Ambient, PeaksNearThirteen) {
  const double noonish = AmbientModel::solar_nir_irradiance(13.0);
  EXPECT_GT(noonish, AmbientModel::solar_nir_irradiance(8.0));
  EXPECT_GT(noonish, AmbientModel::solar_nir_irradiance(19.0));
  EXPECT_GT(noonish, 0.0);
}

TEST(Ambient, DriftStaysBounded) {
  AmbientConditions cond;
  cond.hour_of_day = 12.0;
  cond.drift_fraction = 0.05;
  cond.flicker_fraction = 0.01;
  AmbientModel model(cond);
  const double base = AmbientModel::solar_nir_irradiance(12.0) *
                      cond.indoor_attenuation;
  for (double t = 0; t < 60.0; t += 0.37) {
    const double e = model.irradiance_at(t);
    EXPECT_GE(e, base * 0.93);
    EXPECT_LE(e, base * 1.07);
  }
}

TEST(Ambient, InvalidHourThrows) {
  AmbientConditions cond;
  cond.hour_of_day = 25.0;
  EXPECT_THROW(AmbientModel{cond}, PreconditionError);
}

// ---------------------------------------------------------------- scene

Scene test_scene(double hour = 2.0 /* night: no ambient */) {
  AmbientConditions cond;
  cond.hour_of_day = hour;
  return make_prototype_scene({}, AmbientModel(cond));
}

TEST(Scene, PrototypeGeometryAlternates) {
  BoardLayout layout;
  // Parts P1 L1 P2 L2 P3 at the configured pitch, centred at the origin.
  EXPECT_NEAR(prototype_pd_x(layout, 0), -2 * layout.pitch_m, 1e-12);
  EXPECT_NEAR(prototype_pd_x(layout, 1), 0.0, 1e-12);
  EXPECT_NEAR(prototype_pd_x(layout, 2), 2 * layout.pitch_m, 1e-12);
  EXPECT_NEAR(prototype_led_x(layout, 0), -layout.pitch_m, 1e-12);
  EXPECT_NEAR(prototype_led_x(layout, 1), layout.pitch_m, 1e-12);
}

TEST(Scene, FingerAboveCentreLightsAllPds) {
  Scene scene = test_scene();
  ReflectorPatch finger;
  finger.position = {0, 0, 0.02};
  const auto rss = scene.evaluate({&finger, 1}, 0.0);
  ASSERT_EQ(rss.size(), 3u);
  for (double v : rss) EXPECT_GT(v, 0.0);
}

TEST(Scene, SymmetricGeometryGivesSymmetricOuterSignals) {
  Scene scene = test_scene();
  ReflectorPatch finger;
  finger.position = {0, 0, 0.02};
  const auto rss = scene.evaluate({&finger, 1}, 0.0);
  EXPECT_NEAR(rss[0], rss[2], rss[0] * 1e-6);
}

TEST(Scene, CloserFingerGivesMoreSignal) {
  Scene scene = test_scene();
  ReflectorPatch near_finger, far_finger;
  near_finger.position = {0, 0, 0.015};
  far_finger.position = {0, 0, 0.03};
  const auto near_rss = scene.evaluate({&near_finger, 1}, 0.0);
  const auto far_rss = scene.evaluate({&far_finger, 1}, 0.0);
  EXPECT_GT(near_rss[1], far_rss[1]);
}

TEST(Scene, FingerOnP1SideFavoursP1) {
  Scene scene = test_scene();
  ReflectorPatch finger;
  finger.position = {-0.008, 0, 0.02};  // over P1's side
  const auto rss = scene.evaluate({&finger, 1}, 0.0);
  EXPECT_GT(rss[0], rss[2]);
}

TEST(Scene, NoPatchesStillAmbientCoupled) {
  AmbientConditions cond;
  cond.hour_of_day = 13.0;  // bright day
  Scene scene = make_prototype_scene({}, AmbientModel(cond));
  const auto rss = scene.evaluate({}, 0.0);
  for (double v : rss) EXPECT_GT(v, 0.0);
}

TEST(Scene, AmbientShadowReducesCoupling) {
  AmbientConditions cond;
  cond.hour_of_day = 13.0;
  Scene scene = make_prototype_scene({}, AmbientModel(cond));
  // A large patch hovering close blocks skylight; with high reflectivity 0
  // it adds nothing back (pure shadow test).
  ReflectorPatch block;
  block.position = {0, 0, 0.01};
  block.area_m2 = 4e-4;
  block.reflectivity = 0.0;
  const auto open = scene.evaluate({}, 0.0);
  const auto blocked = scene.evaluate({&block, 1}, 0.0);
  EXPECT_LT(blocked[1], open[1]);
}

TEST(Scene, DirectInjectionAddsSignal) {
  Scene scene = test_scene();
  DirectInjection remote;
  remote.irradiance = 1e4;
  const auto quiet = scene.evaluate({}, 0.0);
  const auto zapped = scene.evaluate({}, 0.0, remote);
  for (std::size_t i = 0; i < quiet.size(); ++i)
    EXPECT_GT(zapped[i], quiet[i]);
}

TEST(Scene, InvalidLayoutThrows) {
  BoardLayout bad;
  bad.pd_count = 2;
  bad.led_count = 2;
  EXPECT_THROW(make_prototype_scene(bad), PreconditionError);
}

TEST(Scene, IncidentIrradiancePositiveInsideBeams) {
  Scene scene = test_scene();
  ReflectorPatch finger;
  finger.position = {0, 0, 0.02};
  EXPECT_GT(scene.incident_irradiance(finger), 0.0);
}

}  // namespace
}  // namespace airfinger::optics
