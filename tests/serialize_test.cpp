// Tests for model persistence: exact round-trips and malformed-input
// rejection for trees, forests, the detect recognizer, and the filter.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/detect_recognizer.hpp"
#include "core/interference_filter.hpp"
#include "core/training.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/serialize.hpp"

namespace airfinger {
namespace {

ml::SampleSet blobs(std::size_t per_class, std::uint64_t seed) {
  common::Rng rng(seed);
  ml::SampleSet set;
  const double centres[3][2] = {{0, 0}, {5, 0}, {0, 5}};
  for (int c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per_class; ++i) {
      set.features.push_back({centres[c][0] + rng.normal(0, 0.8),
                              centres[c][1] + rng.normal(0, 0.8)});
      set.labels.push_back(c);
    }
  return set;
}

TEST(Serialize, TreeRoundTripPredictsIdentically) {
  const auto data = blobs(50, 1);
  ml::DecisionTree tree;
  tree.fit(data);
  std::stringstream buffer;
  tree.save(buffer);
  const ml::DecisionTree loaded = ml::DecisionTree::load(buffer);
  for (const auto& row : data.features) {
    EXPECT_EQ(tree.predict(row), loaded.predict(row));
    EXPECT_EQ(tree.predict_proba(row), loaded.predict_proba(row));
  }
  EXPECT_EQ(tree.node_count(), loaded.node_count());
  EXPECT_EQ(tree.feature_importances(), loaded.feature_importances());
}

TEST(Serialize, ForestRoundTripPredictsIdentically) {
  const auto data = blobs(40, 2);
  ml::RandomForestConfig config;
  config.num_trees = 12;
  ml::RandomForest forest(config);
  forest.fit(data);
  std::stringstream buffer;
  forest.save(buffer);
  const ml::RandomForest loaded = ml::RandomForest::load(buffer);
  EXPECT_EQ(loaded.tree_count(), 12u);
  for (const auto& row : data.features)
    EXPECT_EQ(forest.predict_proba(row), loaded.predict_proba(row));
}

TEST(Serialize, UnfittedModelsRefuseToSave) {
  std::stringstream buffer;
  ml::DecisionTree tree;
  EXPECT_THROW(tree.save(buffer), PreconditionError);
  ml::RandomForest forest;
  EXPECT_THROW(forest.save(buffer), PreconditionError);
}

TEST(Serialize, MalformedInputThrows) {
  std::stringstream wrong_tag("not_a_tree 1\n");
  EXPECT_THROW(ml::DecisionTree::load(wrong_tag), PreconditionError);
  std::stringstream bad_version("af_tree 9\n");
  EXPECT_THROW(ml::DecisionTree::load(bad_version), PreconditionError);
  std::stringstream truncated("af_tree 1\nclasses 2\nimportances 1");
  EXPECT_THROW(ml::DecisionTree::load(truncated), PreconditionError);
}

TEST(Serialize, RecognizerRoundTrip) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 4;
  config.kinds = {synth::MotionKind::kClick, synth::MotionKind::kRub};
  config.seed = 3;
  const auto data = synth::DatasetBuilder(config).collect();
  const core::DataProcessor proc;

  core::DetectRecognizerConfig rc;
  rc.selected_features = 12;
  rc.forest.num_trees = 10;
  core::DetectRecognizer rec(rc);
  const auto set = core::build_feature_set(data, proc, rec.bank(),
                                           core::LabelScheme::kDetectSix);
  rec.fit(set);

  std::stringstream buffer;
  rec.save(buffer);
  const core::DetectRecognizer loaded =
      core::DetectRecognizer::load(buffer, rc);
  EXPECT_TRUE(loaded.is_fitted());
  EXPECT_EQ(loaded.selected_features(), rec.selected_features());
  for (const auto& row : set.features)
    EXPECT_EQ(rec.predict(row), loaded.predict(row));
}

TEST(Serialize, RecognizerBankMismatchThrows) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 3;
  config.kinds = {synth::MotionKind::kClick, synth::MotionKind::kRub};
  config.seed = 4;
  const auto data = synth::DatasetBuilder(config).collect();
  const core::DataProcessor proc;
  core::DetectRecognizer rec;
  const auto set = core::build_feature_set(data, proc, rec.bank(),
                                           core::LabelScheme::kDetectSix);
  rec.fit(set);
  std::stringstream buffer;
  rec.save(buffer);

  core::DetectRecognizerConfig other;
  other.bank.cross_channel = false;  // different bank structure
  EXPECT_THROW(core::DetectRecognizer::load(buffer, other),
               PreconditionError);
}

TEST(Serialize, FilterRoundTrip) {
  synth::CollectionConfig config;
  config.users = 1;
  config.sessions = 1;
  config.repetitions = 5;
  config.kinds = {synth::MotionKind::kClick, synth::MotionKind::kScratch};
  config.seed = 5;
  const auto data = synth::DatasetBuilder(config).collect();
  const core::DataProcessor proc;
  const features::FeatureBank bank;
  const auto set = core::build_feature_set(
      data, proc, bank, core::LabelScheme::kGestureVsNonGesture);

  core::InterferenceFilter filter(bank);
  filter.fit(set);
  std::stringstream buffer;
  filter.save(buffer);
  const auto loaded = core::InterferenceFilter::load(buffer, bank);
  EXPECT_TRUE(loaded.is_fitted());
  for (const auto& row : set.features)
    EXPECT_EQ(filter.is_gesture(row), loaded.is_gesture(row));
}

TEST(Serialize, LogisticRoundTrip) {
  const auto data = blobs(40, 6);
  ml::LogisticRegression lr;
  lr.fit(data);
  std::stringstream buffer;
  lr.save(buffer);
  const auto loaded = ml::LogisticRegression::load(buffer);
  for (const auto& row : data.features)
    EXPECT_EQ(lr.predict_proba(row), loaded.predict_proba(row));
}

TEST(Serialize, NaiveBayesRoundTrip) {
  const auto data = blobs(40, 7);
  ml::BernoulliNaiveBayes bnb;
  bnb.fit(data);
  std::stringstream buffer;
  bnb.save(buffer);
  const auto loaded = ml::BernoulliNaiveBayes::load(buffer);
  for (const auto& row : data.features) {
    EXPECT_EQ(bnb.predict(row), loaded.predict(row));
    EXPECT_EQ(bnb.log_posterior(row), loaded.log_posterior(row));
  }
}

TEST(Serialize, LrBnbUnfittedRefuseToSave) {
  std::stringstream buffer;
  ml::LogisticRegression lr;
  EXPECT_THROW(lr.save(buffer), PreconditionError);
  ml::BernoulliNaiveBayes bnb;
  EXPECT_THROW(bnb.save(buffer), PreconditionError);
}

}  // namespace
}  // namespace airfinger
